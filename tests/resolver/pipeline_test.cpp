// The pipelined resolver front door (ResolverConfig::max_inflight_resolutions):
//  * admission-queue overflow rejects with an immediate SERVFAIL and never
//    touches the network;
//  * duplicate in-flight qname/qtype chains coalesce onto ONE upstream
//    fetch tree, and every waiter is answered;
//  * the bounded-work deadline cancels every coalesced waiter, not just
//    the first;
//  * max_fetches_per_resolution budgets the logical resolution — waiters
//    joining the chain do not buy extra fetches;
//  * an attacked campaign with pipelined resolvers stays byte-identical
//    across shard counts 1/2/4 (the engine's determinism contract).
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "attack/schedule.hpp"
#include "authns/server.hpp"
#include "experiment/campaign.hpp"
#include "experiment/testbed.hpp"
#include "obs/names.hpp"
#include "resolver/resolver.hpp"

namespace recwild::resolver {
namespace {

// Mini-Internet with full glue: root -> nl -> test.nl, one authoritative
// serving a wildcard TXT ("A1"). Kept local so pipeline knobs can differ
// per test without touching the shared resolver_test harness.
struct PipeWorld {
  net::Simulation sim{4242};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<authns::AuthServer> root;
  std::unique_ptr<authns::AuthServer> tld;
  std::unique_ptr<authns::AuthServer> auth;
  net::IpAddress root_addr, tld_addr, auth_addr;
  std::unique_ptr<RecursiveResolver> resolver;

  explicit PipeWorld(ResolverConfig rcfg = {}, double loss = 0.0) {
    params.loss_rate = loss;
    net_ = std::make_unique<net::Network>(sim, params);
    const auto loc = [](const char* code) {
      return net::find_location(code)->point;
    };
    root_addr = net_->allocate_address();
    tld_addr = net_->allocate_address();
    auth_addr = net_->allocate_address();

    authns::Zone root_zone{dns::Name{}};
    dns::SoaRdata soa;
    soa.minimum = 60;
    root_zone.add({dns::Name{}, dns::RRClass::IN, 86400, soa});
    root_zone.add({dns::Name{}, dns::RRClass::IN, 86400,
                   dns::NsRdata{dns::Name::parse("a.root-servers.net")}});
    root_zone.add({dns::Name::parse("a.root-servers.net"), dns::RRClass::IN,
                   86400, dns::ARdata{root_addr}});
    root_zone.add({dns::Name::parse("nl"), dns::RRClass::IN, 86400,
                   dns::NsRdata{dns::Name::parse("ns1.dns.nl")}});
    root_zone.add({dns::Name::parse("ns1.dns.nl"), dns::RRClass::IN, 86400,
                   dns::ARdata{tld_addr}});

    authns::Zone nl_zone{dns::Name::parse("nl")};
    nl_zone.add({dns::Name::parse("nl"), dns::RRClass::IN, 86400, soa});
    nl_zone.add({dns::Name::parse("nl"), dns::RRClass::IN, 86400,
                 dns::NsRdata{dns::Name::parse("ns1.dns.nl")}});
    nl_zone.add({dns::Name::parse("ns1.dns.nl"), dns::RRClass::IN, 86400,
                 dns::ARdata{tld_addr}});
    nl_zone.add({dns::Name::parse("test.nl"), dns::RRClass::IN, 86400,
                 dns::NsRdata{dns::Name::parse("ns1.test.nl")}});
    nl_zone.add({dns::Name::parse("ns1.test.nl"), dns::RRClass::IN, 86400,
                 dns::ARdata{auth_addr}});

    authns::Zone test_zone{dns::Name::parse("test.nl")};
    dns::SoaRdata s;
    s.minimum = 30;
    test_zone.add({dns::Name::parse("test.nl"), dns::RRClass::IN, 86400, s});
    test_zone.add({dns::Name::parse("test.nl"), dns::RRClass::IN, 86400,
                   dns::NsRdata{dns::Name::parse("ns1.test.nl")}});
    test_zone.add({dns::Name::parse("ns1.test.nl"), dns::RRClass::IN, 86400,
                   dns::ARdata{auth_addr}});
    test_zone.add({dns::Name::parse("*.test.nl"), dns::RRClass::IN, 5,
                   dns::TxtRdata{{"A1"}}});

    auto server = [&](const char* name, const char* city,
                      net::IpAddress addr) {
      const net::NodeId node = net_->add_node(name, loc(city));
      authns::AuthServerConfig cfg;
      cfg.identity = name;
      return std::make_unique<authns::AuthServer>(
          *net_, node, net::Endpoint{addr, net::kDnsPort}, cfg);
    };
    root = server("root", "IAD", root_addr);
    root->add_zone(std::move(root_zone));
    root->start();
    tld = server("nl-tld", "AMS", tld_addr);
    tld->add_zone(std::move(nl_zone));
    tld->start();
    auth = server("auth", "FRA", auth_addr);
    auth->add_zone(std::move(test_zone));
    auth->start();

    const net::NodeId rnode = net_->add_node("recursive", loc("AMS"));
    rcfg.name = "pipe-recursive";
    resolver = std::make_unique<RecursiveResolver>(
        *net_, rnode, net_->allocate_address(), rcfg,
        std::vector<RootHint>{
            {dns::Name::parse("a.root-servers.net"), root_addr}},
        stats::Rng{555});
    resolver->start();
  }

  void issue(const char* name, std::vector<ResolveOutcome>& sink) {
    resolver->resolve(
        dns::Question{dns::Name::parse(name), dns::RRType::TXT,
                      dns::RRClass::IN},
        [&sink](const ResolveOutcome& o) { sink.push_back(o); });
  }

  [[nodiscard]] std::uint64_t counter(std::string_view name) const {
    return sim.metrics().snapshot().counter_value(name);
  }
};

ResolverConfig pipelined(int inflight, int queue = 0) {
  ResolverConfig cfg;
  cfg.max_inflight_resolutions = inflight;
  cfg.max_queued_resolutions = queue;
  return cfg;
}

TEST(ResolverPipeline, AdmissionQueueOverflowRejectsImmediately) {
  PipeWorld world{pipelined(/*inflight=*/1, /*queue=*/1)};
  std::vector<ResolveOutcome> first, second, third;
  world.issue("a.test.nl", first);   // admitted
  world.issue("b.test.nl", second);  // queued
  world.issue("c.test.nl", third);   // queue full -> rejected now

  // Rejection is synchronous, before any simulated time passes, and does
  // not touch the network.
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0].rcode, dns::Rcode::ServFail);
  EXPECT_EQ(third[0].upstream_queries, 0);
  EXPECT_EQ(world.resolver->inflight_resolutions(), 1u);
  EXPECT_EQ(world.resolver->queued_resolutions(), 1u);

  world.sim.run();
  ASSERT_EQ(first.size(), 1u);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].rcode, dns::Rcode::NoError);
  EXPECT_EQ(second[0].rcode, dns::Rcode::NoError);
  EXPECT_EQ(world.resolver->inflight_resolutions(), 0u);
  EXPECT_EQ(world.resolver->queued_resolutions(), 0u);
  EXPECT_EQ(world.counter(obs::names::kResolverAdmissionQueued), 1u);
  EXPECT_EQ(world.counter(obs::names::kResolverAdmissionRejected), 1u);
}

TEST(ResolverPipeline, DuplicateQnamesCoalesceOntoOneFetchTree) {
  PipeWorld world{pipelined(/*inflight=*/8)};
  std::vector<ResolveOutcome> outcomes;
  for (int i = 0; i < 4; ++i) world.issue("same.test.nl", outcomes);
  world.sim.run();

  // Every waiter answered, all from the single upstream chain.
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.rcode, dns::Rcode::NoError);
    ASSERT_FALSE(o.answers.empty());
    EXPECT_EQ(std::get<dns::TxtRdata>(o.answers[0].rdata).strings.at(0),
              "A1");
  }
  EXPECT_EQ(world.root->queries_received(), 1u);
  EXPECT_EQ(world.tld->queries_received(), 1u);
  EXPECT_EQ(world.auth->queries_received(), 1u);
  EXPECT_EQ(world.counter(obs::names::kResolverCoalesced), 3u);
  // Joining waiters consume no admission slots: one logical resolution.
  EXPECT_EQ(world.counter(obs::names::kResolverAdmissionQueued), 0u);
}

TEST(ResolverPipeline, QueuedDuplicatesJoinTheQueuedEntry) {
  PipeWorld world{pipelined(/*inflight=*/1, /*queue=*/4)};
  std::vector<ResolveOutcome> head, dup;
  world.issue("head.test.nl", head);
  world.issue("dup.test.nl", dup);
  world.issue("dup.test.nl", dup);  // joins the queued entry, not a new one
  EXPECT_EQ(world.resolver->queued_resolutions(), 1u);
  world.sim.run();
  ASSERT_EQ(head.size(), 1u);
  ASSERT_EQ(dup.size(), 2u);
  EXPECT_EQ(dup[0].rcode, dns::Rcode::NoError);
  EXPECT_EQ(dup[1].rcode, dns::Rcode::NoError);
  EXPECT_EQ(world.counter(obs::names::kResolverCoalesced), 1u);
  EXPECT_EQ(world.counter(obs::names::kResolverAdmissionQueued), 1u);
}

TEST(ResolverPipeline, DeadlineCancelsEveryCoalescedWaiter) {
  // 100% loss: no resolution can ever complete; the bounded-work deadline
  // must fail the job — and with it, every waiter that joined the chain.
  ResolverConfig cfg = pipelined(/*inflight=*/8);
  cfg.max_resolution_time = net::Duration::seconds(2);
  PipeWorld world{cfg, /*loss=*/1.0};
  std::vector<ResolveOutcome> outcomes;
  for (int i = 0; i < 3; ++i) world.issue("dead.test.nl", outcomes);
  world.sim.run();

  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.rcode, dns::Rcode::ServFail);
    EXPECT_EQ(o.elapsed, net::Duration::seconds(2));
  }
  // One logical resolution expired, and its admission slot was released.
  EXPECT_EQ(world.counter(obs::names::kResolverDeadlineExpired), 1u);
  EXPECT_EQ(world.resolver->inflight_resolutions(), 0u);
  EXPECT_EQ(world.counter(obs::names::kResolverCoalesced), 2u);
}

TEST(ResolverPipeline, CacheHitBypassesAdmission) {
  PipeWorld world{pipelined(/*inflight=*/1, /*queue=*/0)};
  std::vector<ResolveOutcome> warm, a, b, c;
  world.issue("warm.test.nl", warm);
  world.sim.run();
  ASSERT_EQ(warm.size(), 1u);

  // The cached answer (TTL 5) completes synchronously without a slot even
  // while the only slot is held by a cold resolution — so a burst of
  // repeats is never rejected.
  world.issue("cold.test.nl", a);  // takes the slot
  world.issue("warm.test.nl", b);
  world.issue("warm.test.nl", c);
  ASSERT_EQ(b.size(), 1u);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(b[0].upstream_queries, 0);
  EXPECT_EQ(world.counter(obs::names::kResolverAdmissionRejected), 0u);
  world.sim.run();
  ASSERT_EQ(a.size(), 1u);
}

TEST(ResolverPipeline, WaiterAtExactRecordExpiryGoesUpstream) {
  // Regression for the peek/get TTL boundary: RecordCache treats
  // expires_at <= now as expired in BOTH peek (the admission bypass probe)
  // and get (the resolution path). A waiter arriving exactly at expiry
  // must take the admitted upstream path — if peek said "live" while get
  // said "expired", the resolution would run upstream without ever having
  // been admitted, leaking past the inflight cap.
  PipeWorld world{pipelined(/*inflight=*/4)};
  std::vector<ResolveOutcome> warm;
  world.issue("edge.test.nl", warm);
  world.sim.run();
  ASSERT_EQ(warm.size(), 1u);
  ASSERT_EQ(warm[0].rcode, dns::Rcode::NoError);

  // The wildcard TXT has TTL 5s and was inserted when the first answer
  // arrived (elapsed after origin); jump to the exact expiry instant.
  const net::SimTime expiry =
      net::SimTime::origin() + warm[0].elapsed + net::Duration::seconds(5);
  ASSERT_LE(world.sim.now(), expiry);
  world.sim.run_until(expiry);
  const dns::Name qname = dns::Name::parse("edge.test.nl");
  EXPECT_EQ(world.resolver->cache().peek(qname, dns::RRType::TXT,
                                         world.sim.now()),
            nullptr)
      << "peek must treat expires_at == now as expired";

  std::vector<ResolveOutcome> edge;
  world.issue("edge.test.nl", edge);
  EXPECT_EQ(world.resolver->inflight_resolutions(), 1u)
      << "expiry-instant waiter must be admitted, not cache-bypassed";
  world.sim.run();
  ASSERT_EQ(edge.size(), 1u);
  EXPECT_EQ(edge[0].rcode, dns::Rcode::NoError);
  EXPECT_GT(edge[0].upstream_queries, 0);
  EXPECT_EQ(world.resolver->inflight_resolutions(), 0u);
}

// Glueless variant: test.nl delegates to four nameservers under farm.
// (out-of-bailiwick, no glue anywhere), and the root server is also
// authoritative for farm. — resolving any ns*.farm costs one root query.
struct GluelessWorld {
  net::Simulation sim{4243};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<authns::AuthServer> root;
  std::unique_ptr<authns::AuthServer> tld;
  std::unique_ptr<authns::AuthServer> auth;
  net::IpAddress root_addr, tld_addr, auth_addr;
  std::unique_ptr<RecursiveResolver> resolver;

  explicit GluelessWorld(ResolverConfig rcfg) {
    params.loss_rate = 0.0;
    net_ = std::make_unique<net::Network>(sim, params);
    const auto loc = [](const char* code) {
      return net::find_location(code)->point;
    };
    root_addr = net_->allocate_address();
    tld_addr = net_->allocate_address();
    auth_addr = net_->allocate_address();

    authns::Zone root_zone{dns::Name{}};
    dns::SoaRdata soa;
    soa.minimum = 60;
    root_zone.add({dns::Name{}, dns::RRClass::IN, 86400, soa});
    root_zone.add({dns::Name{}, dns::RRClass::IN, 86400,
                   dns::NsRdata{dns::Name::parse("a.root-servers.net")}});
    root_zone.add({dns::Name::parse("a.root-servers.net"), dns::RRClass::IN,
                   86400, dns::ARdata{root_addr}});
    root_zone.add({dns::Name::parse("nl"), dns::RRClass::IN, 86400,
                   dns::NsRdata{dns::Name::parse("ns1.dns.nl")}});
    root_zone.add({dns::Name::parse("ns1.dns.nl"), dns::RRClass::IN, 86400,
                   dns::ARdata{tld_addr}});

    // Root answers authoritatively for farm. (kept at the root to avoid a
    // second TLD): A records for the glueless NS targets.
    authns::Zone farm_zone{dns::Name::parse("farm")};
    farm_zone.add({dns::Name::parse("farm"), dns::RRClass::IN, 86400, soa});
    farm_zone.add({dns::Name::parse("farm"), dns::RRClass::IN, 86400,
                   dns::NsRdata{dns::Name::parse("a.root-servers.net")}});
    for (int i = 1; i <= 4; ++i) {
      farm_zone.add({dns::Name::parse("ns" + std::to_string(i) + ".farm"),
                     dns::RRClass::IN, 86400, dns::ARdata{auth_addr}});
    }
    root_zone.add({dns::Name::parse("farm"), dns::RRClass::IN, 86400,
                   dns::NsRdata{dns::Name::parse("a.root-servers.net")}});

    authns::Zone nl_zone{dns::Name::parse("nl")};
    nl_zone.add({dns::Name::parse("nl"), dns::RRClass::IN, 86400, soa});
    nl_zone.add({dns::Name::parse("nl"), dns::RRClass::IN, 86400,
                 dns::NsRdata{dns::Name::parse("ns1.dns.nl")}});
    nl_zone.add({dns::Name::parse("ns1.dns.nl"), dns::RRClass::IN, 86400,
                 dns::ARdata{tld_addr}});
    for (int i = 1; i <= 4; ++i) {
      nl_zone.add({dns::Name::parse("test.nl"), dns::RRClass::IN, 86400,
                   dns::NsRdata{
                       dns::Name::parse("ns" + std::to_string(i) + ".farm")}});
    }

    authns::Zone test_zone{dns::Name::parse("test.nl")};
    dns::SoaRdata s;
    s.minimum = 30;
    test_zone.add({dns::Name::parse("test.nl"), dns::RRClass::IN, 86400, s});
    for (int i = 1; i <= 4; ++i) {
      test_zone.add({dns::Name::parse("test.nl"), dns::RRClass::IN, 86400,
                     dns::NsRdata{dns::Name::parse("ns" + std::to_string(i) +
                                                   ".farm")}});
    }
    test_zone.add({dns::Name::parse("*.test.nl"), dns::RRClass::IN, 5,
                   dns::TxtRdata{{"A1"}}});

    auto server = [&](const char* name, const char* city,
                      net::IpAddress addr) {
      const net::NodeId node = net_->add_node(name, loc(city));
      authns::AuthServerConfig cfg;
      cfg.identity = name;
      return std::make_unique<authns::AuthServer>(
          *net_, node, net::Endpoint{addr, net::kDnsPort}, cfg);
    };
    root = server("root", "IAD", root_addr);
    root->add_zone(std::move(root_zone));
    root->add_zone(std::move(farm_zone));
    root->start();
    tld = server("nl-tld", "AMS", tld_addr);
    tld->add_zone(std::move(nl_zone));
    tld->start();
    auth = server("auth", "FRA", auth_addr);
    auth->add_zone(std::move(test_zone));
    auth->start();

    const net::NodeId rnode = net_->add_node("recursive", loc("AMS"));
    rcfg.name = "glueless-recursive";
    resolver = std::make_unique<RecursiveResolver>(
        *net_, rnode, net_->allocate_address(), rcfg,
        std::vector<RootHint>{
            {dns::Name::parse("a.root-servers.net"), root_addr}},
        stats::Rng{555});
    resolver->start();
  }
};

std::uint64_t fetches_spawned_for(int waiters, ResolverConfig cfg) {
  GluelessWorld world{cfg};
  std::vector<ResolveOutcome> outcomes;
  for (int i = 0; i < waiters; ++i) {
    world.resolver->resolve(
        dns::Question{dns::Name::parse("abc.test.nl"), dns::RRType::TXT,
                      dns::RRClass::IN},
        [&outcomes](const ResolveOutcome& o) { outcomes.push_back(o); });
  }
  world.sim.run();
  EXPECT_EQ(outcomes.size(), static_cast<std::size_t>(waiters));
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.rcode, dns::Rcode::NoError);
  }
  return world.sim.metrics().snapshot().counter_value(
      obs::names::kResolverFetchSpawned);
}

TEST(ResolverPipeline, GluelessWorldResolvesWithoutPipelining) {
  // Sanity for the harness itself: the glueless walk completes with the
  // pipeline off, so any failure below is the pipeline's.
  const std::uint64_t spawned = fetches_spawned_for(1, ResolverConfig{});
  EXPECT_GT(spawned, 0u);
}

TEST(ResolverPipeline, FetchBudgetIsPerLogicalResolutionNotPerWaiter) {
  // Four glueless NS targets, budget 2: the chain spawns exactly as many
  // NS-address fetches with three coalesced waiters as with one. If each
  // waiter bought its own budget, the 3-waiter run would spawn more.
  ResolverConfig cfg = pipelined(/*inflight=*/8);
  cfg.max_fetches_per_resolution = 2;
  const std::uint64_t solo = fetches_spawned_for(1, cfg);
  const std::uint64_t trio = fetches_spawned_for(3, cfg);
  EXPECT_GT(solo, 0u);
  EXPECT_LE(solo, 2u);
  EXPECT_EQ(solo, trio);
}

// --- sharded campaign determinism with pipelined resolvers ----------------

experiment::TestbedConfig pipelined_attacked_config() {
  experiment::TestbedConfig cfg;
  cfg.seed = 77;
  cfg.population.probes = 48;
  cfg.test_sites = {"DUB", "FRA"};
  cfg.population.resolver_template.max_inflight_resolutions = 4;
  cfg.population.resolver_template.max_queued_resolutions = 64;
  cfg.population.resolver_template.max_fetches_per_resolution = 2;

  attack::AttackSchedule sched;
  sched.zone().chains = 4;
  sched.zone().fanout = 8;
  attack::AttackEvent nxns;
  nxns.kind = attack::AttackKind::Nxns;
  nxns.start = net::SimTime::origin() + net::Duration::minutes(1);
  nxns.end = net::SimTime::origin() + net::Duration::minutes(4);
  nxns.interval = net::Duration::seconds(5);
  nxns.bots = 8;
  sched.add(nxns);
  cfg.attack = sched;
  return cfg;
}

std::string pipelined_attacked_metrics(std::size_t shards) {
  experiment::Testbed tb{pipelined_attacked_config()};
  experiment::CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 4;
  cc.shards = shards;
  const auto result = run_campaign(tb, cc);
  return result.metrics.to_json(obs::SnapshotStyle::MergeSafe);
}

TEST(ResolverPipeline, AttackedPipelinedCampaignIsShardInvariant) {
  const std::string serial = pipelined_attacked_metrics(1);
  EXPECT_NE(serial.find("resolver."), std::string::npos);
  EXPECT_EQ(serial, pipelined_attacked_metrics(2));
  EXPECT_EQ(serial, pipelined_attacked_metrics(4));
}

}  // namespace
}  // namespace recwild::resolver
