#include "resolver/infra_cache.hpp"

#include <gtest/gtest.h>

namespace recwild::resolver {
namespace {

net::SimTime at_s(double s) {
  return net::SimTime::origin() + net::Duration::seconds(s);
}

const net::IpAddress kServer{0x0a000001};

TEST(InfraCache, UnknownServerIsNull) {
  InfraCache cache;
  EXPECT_EQ(cache.get(kServer, at_s(0)), nullptr);
}

TEST(InfraCache, FirstSampleSetsSrtt) {
  InfraCache cache;
  cache.report_rtt(kServer, net::Duration::millis(40), at_s(0));
  const auto* st = cache.get(kServer, at_s(1));
  ASSERT_NE(st, nullptr);
  EXPECT_DOUBLE_EQ(st->srtt_ms, 40.0);
  EXPECT_DOUBLE_EQ(st->rttvar_ms, 20.0);
}

TEST(InfraCache, EwmaSmoothing) {
  InfraCache cache;  // alpha = 0.3
  cache.report_rtt(kServer, net::Duration::millis(100), at_s(0));
  cache.report_rtt(kServer, net::Duration::millis(200), at_s(1));
  const auto* st = cache.get(kServer, at_s(2));
  ASSERT_NE(st, nullptr);
  EXPECT_NEAR(st->srtt_ms, 0.7 * 100 + 0.3 * 200, 1e-9);
}

TEST(InfraCache, ConvergesTowardsStableRtt) {
  InfraCache cache;
  cache.report_rtt(kServer, net::Duration::millis(500), at_s(0));
  for (int i = 1; i <= 50; ++i) {
    cache.report_rtt(kServer, net::Duration::millis(50), at_s(i));
  }
  EXPECT_NEAR(cache.get(kServer, at_s(51))->srtt_ms, 50.0, 1.0);
}

TEST(InfraCache, EntryExpiresAfterTtl) {
  InfraCacheConfig cfg;
  cfg.entry_ttl = net::Duration::seconds(600);  // BIND's 10 minutes
  InfraCache cache{cfg};
  cache.report_rtt(kServer, net::Duration::millis(40), at_s(0));
  EXPECT_NE(cache.get(kServer, at_s(599)), nullptr);
  EXPECT_EQ(cache.get(kServer, at_s(601)), nullptr);
}

TEST(InfraCache, UpdateRefreshesExpiry) {
  InfraCacheConfig cfg;
  cfg.entry_ttl = net::Duration::seconds(600);
  InfraCache cache{cfg};
  cache.report_rtt(kServer, net::Duration::millis(40), at_s(0));
  cache.report_rtt(kServer, net::Duration::millis(40), at_s(500));
  EXPECT_NE(cache.get(kServer, at_s(1000)), nullptr);
}

TEST(InfraCache, ExpiredEntryRestartsFresh) {
  InfraCacheConfig cfg;
  cfg.entry_ttl = net::Duration::seconds(10);
  InfraCache cache{cfg};
  cache.report_rtt(kServer, net::Duration::millis(500), at_s(0));
  cache.report_rtt(kServer, net::Duration::millis(20), at_s(100));
  // Not an EWMA of 500: the old entry had expired.
  EXPECT_DOUBLE_EQ(cache.get(kServer, at_s(101))->srtt_ms, 20.0);
}

TEST(InfraCache, TimeoutDoublesSrtt) {
  InfraCache cache;
  cache.report_rtt(kServer, net::Duration::millis(100), at_s(0));
  cache.report_timeout(kServer, at_s(1));
  EXPECT_DOUBLE_EQ(cache.get(kServer, at_s(2))->srtt_ms, 200.0);
  EXPECT_EQ(cache.get(kServer, at_s(2))->consecutive_timeouts, 1);
}

TEST(InfraCache, TimeoutOnUnknownServerPenalizes) {
  InfraCache cache;
  cache.report_timeout(kServer, at_s(0));
  const auto* st = cache.get(kServer, at_s(1));
  ASSERT_NE(st, nullptr);
  EXPECT_GT(st->srtt_ms, 300.0);  // Unbound's 376 ms unknown penalty
}

TEST(InfraCache, SrttCapped) {
  InfraCacheConfig cfg;
  cfg.max_srtt_ms = 1000.0;
  InfraCache cache{cfg};
  cache.report_rtt(kServer, net::Duration::millis(900), at_s(0));
  for (int i = 0; i < 10; ++i) cache.report_timeout(kServer, at_s(i + 1));
  EXPECT_LE(cache.get(kServer, at_s(11))->srtt_ms, 1000.0);
}

TEST(InfraCache, BackoffAfterConsecutiveTimeouts) {
  InfraCacheConfig cfg;
  cfg.backoff_threshold = 3;
  cfg.backoff_duration = net::Duration::seconds(60);
  InfraCache cache{cfg};
  cache.report_rtt(kServer, net::Duration::millis(50), at_s(0));
  cache.report_timeout(kServer, at_s(1));
  cache.report_timeout(kServer, at_s(2));
  EXPECT_FALSE(cache.get(kServer, at_s(3))->in_backoff(at_s(3)));
  cache.report_timeout(kServer, at_s(3));
  EXPECT_TRUE(cache.get(kServer, at_s(4))->in_backoff(at_s(4)));
  EXPECT_FALSE(cache.get(kServer, at_s(64))->in_backoff(at_s(64)));
}

TEST(InfraCache, SuccessfulResponseClearsBackoff) {
  InfraCacheConfig cfg;
  cfg.backoff_threshold = 1;
  InfraCache cache{cfg};
  cache.report_timeout(kServer, at_s(0));
  EXPECT_TRUE(cache.get(kServer, at_s(1))->in_backoff(at_s(1)));
  cache.report_rtt(kServer, net::Duration::millis(30), at_s(2));
  EXPECT_FALSE(cache.get(kServer, at_s(3))->in_backoff(at_s(3)));
  EXPECT_EQ(cache.get(kServer, at_s(3))->consecutive_timeouts, 0);
}

TEST(InfraCache, DecayReducesSrttWithoutRefreshing) {
  InfraCacheConfig cfg;
  cfg.entry_ttl = net::Duration::seconds(100);
  InfraCache cache{cfg};
  cache.report_rtt(kServer, net::Duration::millis(100), at_s(0));
  cache.decay(kServer, 0.5, at_s(10));
  EXPECT_DOUBLE_EQ(cache.get(kServer, at_s(11))->srtt_ms, 50.0);
  // Decay must not extend the lifetime.
  EXPECT_EQ(cache.get(kServer, at_s(150)), nullptr);
}

TEST(InfraCache, DecayOnUnknownIsNoOp) {
  InfraCache cache;
  cache.decay(kServer, 0.5, at_s(0));
  EXPECT_EQ(cache.get(kServer, at_s(1)), nullptr);
}

TEST(InfraCache, RtoCombinesSrttAndVariance) {
  InfraCache cache;
  cache.report_rtt(kServer, net::Duration::millis(100), at_s(0));
  const auto* st = cache.get(kServer, at_s(1));
  EXPECT_DOUBLE_EQ(st->rto_ms(), 100.0 + 4 * 50.0);
}

TEST(InfraCache, SizeCountsLiveEntries) {
  InfraCacheConfig cfg;
  cfg.entry_ttl = net::Duration::seconds(10);
  InfraCache cache{cfg};
  cache.report_rtt(net::IpAddress{1}, net::Duration::millis(10), at_s(0));
  cache.report_rtt(net::IpAddress{2}, net::Duration::millis(10), at_s(5));
  EXPECT_EQ(cache.size(at_s(6)), 2u);
  EXPECT_EQ(cache.size(at_s(12)), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(at_s(6)), 0u);
}

}  // namespace
}  // namespace recwild::resolver
