// DNS-over-TCP fallback: a response that does not fit in the client's UDP
// budget comes back truncated (TC=1) and is retried over the reliable
// stream transport. (The paper notes UDP carries >97% of DNS; TCP is the
// rare but required fallback.)
#include <gtest/gtest.h>

#include "authns/server.hpp"
#include "resolver/resolver.hpp"

namespace recwild::resolver {
namespace {

/// One authoritative serving a TXT RRset too big for 512-byte UDP.
struct World {
  net::Simulation sim{808};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<authns::AuthServer> auth;
  std::unique_ptr<RecursiveResolver> resolver;
  net::IpAddress auth_addr;

  explicit World(bool resolver_edns, double loss = 0.0) {
    params.loss_rate = loss;
    net_ = std::make_unique<net::Network>(sim, params);
    auth_addr = net_->allocate_address();

    authns::Zone zone{dns::Name{}};
    dns::SoaRdata soa;
    soa.minimum = 60;
    zone.add({dns::Name{}, dns::RRClass::IN, 86400, soa});
    zone.add({dns::Name{}, dns::RRClass::IN, 86400,
              dns::NsRdata{dns::Name::parse("ns.test")}});
    zone.add({dns::Name::parse("ns.test"), dns::RRClass::IN, 86400,
              dns::ARdata{auth_addr}});
    // ~1.5 KiB of TXT data: over plain-UDP 512 and over EDNS 1232.
    dns::TxtRdata big;
    for (int i = 0; i < 6; ++i) big.strings.push_back(std::string(250, 'x'));
    zone.add({dns::Name::parse("big.test"), dns::RRClass::IN, 300,
              std::move(big)});
    zone.add({dns::Name::parse("small.test"), dns::RRClass::IN, 300,
              dns::TxtRdata{{"ok"}}});

    authns::AuthServerConfig acfg;
    acfg.identity = "auth";
    auth = std::make_unique<authns::AuthServer>(
        *net_, net_->add_node("auth", net::find_location("FRA")->point),
        net::Endpoint{auth_addr, net::kDnsPort}, acfg);
    auth->add_zone(std::move(zone));
    auth->start();

    ResolverConfig rcfg;
    rcfg.name = "r";
    rcfg.use_edns = resolver_edns;
    resolver = std::make_unique<RecursiveResolver>(
        *net_, net_->add_node("res", net::find_location("AMS")->point),
        net_->allocate_address(), rcfg,
        std::vector<RootHint>{{dns::Name::parse("ns.test"), auth_addr}},
        stats::Rng{3});
    resolver->start();
  }

  ResolveOutcome resolve(const char* name) {
    ResolveOutcome out;
    resolver->resolve(dns::Question{dns::Name::parse(name),
                                    dns::RRType::TXT, dns::RRClass::IN},
                      [&](const ResolveOutcome& o) { out = o; });
    sim.run();
    return out;
  }
};

TEST(TcpFallback, TruncatedAnswerRetriedOverTcp) {
  World w{/*resolver_edns=*/true};
  const auto out = w.resolve("big.test");
  EXPECT_EQ(out.rcode, dns::Rcode::NoError);
  ASSERT_EQ(out.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::TxtRdata>(out.answers[0].rdata).strings.size(),
            6u);
  EXPECT_EQ(w.resolver->tcp_retries(), 1u);
  // UDP try + TCP retry.
  EXPECT_EQ(out.upstream_queries, 2);
}

TEST(TcpFallback, WithoutEdnsStillRecoversViaTcp) {
  World w{/*resolver_edns=*/false};
  const auto out = w.resolve("big.test");
  EXPECT_EQ(out.rcode, dns::Rcode::NoError);
  ASSERT_EQ(out.answers.size(), 1u);
  EXPECT_EQ(w.resolver->tcp_retries(), 1u);
}

TEST(TcpFallback, SmallAnswersStayOnUdp) {
  World w{true};
  const auto out = w.resolve("small.test");
  EXPECT_EQ(out.rcode, dns::Rcode::NoError);
  EXPECT_EQ(w.resolver->tcp_retries(), 0u);
  EXPECT_EQ(out.upstream_queries, 1);
}

TEST(TcpFallback, TcpCostsMoreTime) {
  World w{true};
  const auto small = w.resolve("small-warm.test");  // NXDOMAIN warmup
  (void)small;
  const auto udp = w.resolve("small.test");
  const auto tcp = w.resolve("big.test");
  // TCP path: UDP attempt + handshake + transfer > 2x the UDP-only time.
  EXPECT_GT(tcp.elapsed.ms(), udp.elapsed.ms() * 2);
}

TEST(TcpFallback, SurvivesLossyNetwork) {
  // With 15% packet loss the UDP attempts may time out and retry, but the
  // stream leg is reliable — the oversize answer still arrives.
  World w{true, /*loss=*/0.15};
  const auto out = w.resolve("big.test");
  EXPECT_EQ(out.rcode, dns::Rcode::NoError);
  ASSERT_EQ(out.answers.size(), 1u);
}

}  // namespace
}  // namespace recwild::resolver
