#include "resolver/selection.hpp"

#include <gtest/gtest.h>

#include <map>

namespace recwild::resolver {
namespace {

net::SimTime at_s(double s) {
  return net::SimTime::origin() + net::Duration::seconds(s);
}

const dns::Name kZone = dns::Name::parse("example.nl");
const net::IpAddress kFast{1};
const net::IpAddress kSlow{2};
const std::vector<net::IpAddress> kTwo{kFast, kSlow};

/// Seeds the infra cache with stable RTTs.
InfraCache primed(double fast_ms, double slow_ms) {
  InfraCache cache;
  cache.report_rtt(kFast, net::Duration::millis(fast_ms), at_s(0));
  cache.report_rtt(kSlow, net::Duration::millis(slow_ms), at_s(0));
  return cache;
}

std::map<net::IpAddress, int> tally(ServerSelector& sel, InfraCache& infra,
                                    int n, std::uint64_t seed = 1) {
  stats::Rng rng{seed};
  std::map<net::IpAddress, int> counts;
  for (int i = 0; i < n; ++i) {
    ++counts[sel.select(kZone, kTwo, infra, at_s(1), rng)];
  }
  return counts;
}

/// Like tally(), but feeds the true RTT of the chosen server back after
/// every query — how selection behaves in a live resolver.
std::map<net::IpAddress, int> tally_with_feedback(ServerSelector& sel,
                                                  InfraCache& infra,
                                                  double fast_ms,
                                                  double slow_ms, int n,
                                                  std::uint64_t seed = 1) {
  stats::Rng rng{seed};
  std::map<net::IpAddress, int> counts;
  for (int i = 0; i < n; ++i) {
    const auto pick = sel.select(kZone, kTwo, infra, at_s(i), rng);
    ++counts[pick];
    const double rtt = (pick == kFast) ? fast_ms : slow_ms;
    infra.report_rtt(pick, net::Duration::millis(rtt), at_s(i));
  }
  return counts;
}

TEST(Policy, NamesRoundTrip) {
  for (const PolicyKind k :
       {PolicyKind::BindSrtt, PolicyKind::UnboundBand,
        PolicyKind::PowerDnsFactor, PolicyKind::UniformRandom,
        PolicyKind::RoundRobin, PolicyKind::StickyFirst}) {
    const auto back = policy_from_string(to_string(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(policy_from_string("nonsense").has_value());
}

TEST(BindSrtt, PrefersFastestOverwhelmingly) {
  auto sel = make_selector(PolicyKind::BindSrtt);
  InfraCache infra = primed(40, 300);
  // With live RTT feedback, the fast server dominates: the slow one is
  // re-probed only when aging has decayed its SRTT below 40 ms.
  const auto counts =
      tally_with_feedback(*sel, infra, 40, 300, 200);
  EXPECT_GT(counts.at(kFast), 170);
}

TEST(BindSrtt, DecayEventuallyRetriesSlowServer) {
  SelectionConfig cfg;
  cfg.bind_decay = 0.90;  // faster aging for the test
  auto sel = make_selector(PolicyKind::BindSrtt, cfg);
  InfraCache infra = primed(40, 60);
  const auto counts = tally(*sel, infra, 100);
  // Slow server must be probed at least sometimes thanks to decay.
  EXPECT_GT(counts.count(kSlow) ? counts.at(kSlow) : 0, 5);
  EXPECT_GT(counts.at(kFast), counts.at(kSlow));
}

TEST(BindSrtt, PrimesUnknownServersForEarlyProbing) {
  auto sel = make_selector(PolicyKind::BindSrtt);
  InfraCache infra;  // nothing known
  stats::Rng rng{3};
  (void)sel->select(kZone, kTwo, infra, at_s(1), rng);
  // Both servers must now have primed entries.
  EXPECT_NE(infra.get(kFast, at_s(1)), nullptr);
  EXPECT_NE(infra.get(kSlow, at_s(1)), nullptr);
  EXPECT_LE(infra.get(kFast, at_s(1))->srtt_ms, 32.0);
}

TEST(UnboundBand, SpreadsWithinBand) {
  SelectionConfig cfg;
  cfg.unbound_band_ms = 400;
  auto sel = make_selector(PolicyKind::UnboundBand, cfg);
  InfraCache infra = primed(40, 90);  // 50 ms apart, same band
  const auto counts = tally(*sel, infra, 1000);
  EXPECT_NEAR(counts.at(kFast), 500, 80);
  EXPECT_NEAR(counts.at(kSlow), 500, 80);
}

TEST(UnboundBand, ExcludesBeyondBand) {
  SelectionConfig cfg;
  cfg.unbound_band_ms = 100;
  auto sel = make_selector(PolicyKind::UnboundBand, cfg);
  InfraCache infra = primed(40, 400);  // far apart
  const auto counts = tally(*sel, infra, 300);
  EXPECT_EQ(counts.count(kSlow), 0u);
  EXPECT_EQ(counts.at(kFast), 300);
}

TEST(UnboundBand, UnknownServersAssumedSlowButProbed) {
  SelectionConfig cfg;
  cfg.unbound_band_ms = 400;
  cfg.unbound_unknown_rtt_ms = 376;
  auto sel = make_selector(PolicyKind::UnboundBand, cfg);
  InfraCache infra;
  infra.report_rtt(kFast, net::Duration::millis(40), at_s(0));
  // Unknown kSlow at 376 is within 400 of RTO(kFast)=120 -> still in band.
  const auto counts = tally(*sel, infra, 400);
  EXPECT_GT(counts.at(kSlow), 100);
}

TEST(PowerDns, HeavilyWeightsFastest) {
  auto sel = make_selector(PolicyKind::PowerDnsFactor);
  InfraCache infra = primed(20, 200);
  const auto counts = tally(*sel, infra, 1000);
  // Weight ratio (230/50)^2 ~ 21 : 1.
  EXPECT_GT(counts.at(kFast), 880);
  EXPECT_GT(counts.at(kSlow), 5);  // but never starves the slow one
}

TEST(PowerDns, NearEqualServersShareLoad) {
  auto sel = make_selector(PolicyKind::PowerDnsFactor);
  InfraCache infra = primed(50, 55);
  const auto counts = tally(*sel, infra, 1000);
  EXPECT_GT(counts.at(kSlow), 350);
}

TEST(UniformRandom, IgnoresRtt) {
  auto sel = make_selector(PolicyKind::UniformRandom);
  InfraCache infra = primed(10, 500);
  const auto counts = tally(*sel, infra, 1000);
  EXPECT_NEAR(counts.at(kFast), 500, 80);
}

TEST(RoundRobin, StrictAlternation) {
  auto sel = make_selector(PolicyKind::RoundRobin);
  InfraCache infra;
  stats::Rng rng{1};
  const auto first = sel->select(kZone, kTwo, infra, at_s(1), rng);
  const auto second = sel->select(kZone, kTwo, infra, at_s(1), rng);
  const auto third = sel->select(kZone, kTwo, infra, at_s(1), rng);
  EXPECT_NE(first, second);
  EXPECT_EQ(first, third);
}

TEST(RoundRobin, PerZoneState) {
  auto sel = make_selector(PolicyKind::RoundRobin);
  InfraCache infra;
  stats::Rng rng{1};
  const dns::Name other = dns::Name::parse("other.org");
  const auto a1 = sel->select(kZone, kTwo, infra, at_s(1), rng);
  const auto b1 = sel->select(other, kTwo, infra, at_s(1), rng);
  EXPECT_EQ(a1, b1);  // each zone starts at index 0
}

TEST(StickyFirst, LatchesOntoOneServer) {
  auto sel = make_selector(PolicyKind::StickyFirst);
  InfraCache infra = primed(10, 500);
  const auto counts = tally(*sel, infra, 100);
  EXPECT_EQ(counts.size(), 1u);  // only ever one server
}

TEST(StickyFirst, ToleratesTransientTimeouts) {
  // A forwarder keeps its upstream through sporadic loss (paper §4.4:
  // preference persists beyond the infra-cache TTL).
  auto sel = make_selector(PolicyKind::StickyFirst);
  InfraCache infra;
  stats::Rng rng{5};
  const auto first = sel->select(kZone, kTwo, infra, at_s(1), rng);
  for (int i = 0; i < 5; ++i) sel->on_timeout(kZone, first);
  EXPECT_EQ(sel->select(kZone, kTwo, infra, at_s(2), rng), first);
}

TEST(StickyFirst, RelatchesAfterPersistentFailure) {
  auto sel = make_selector(PolicyKind::StickyFirst);
  InfraCache infra;
  stats::Rng rng{5};
  const auto first = sel->select(kZone, kTwo, infra, at_s(1), rng);
  for (int i = 0; i < 6; ++i) sel->on_timeout(kZone, first);
  // Latch dropped; the selector settles on exactly one (possibly new)
  // server again.
  std::map<net::IpAddress, int> counts;
  for (int i = 0; i < 50; ++i) {
    ++counts[sel->select(kZone, kTwo, infra, at_s(2), rng)];
  }
  EXPECT_EQ(counts.size(), 1u);
}

TEST(StickyFirst, PrefersRetrySame) {
  auto sel = make_selector(PolicyKind::StickyFirst);
  EXPECT_TRUE(sel->prefers_retry_same());
  EXPECT_FALSE(make_selector(PolicyKind::BindSrtt)->prefers_retry_same());
}

TEST(StickyFirst, TimeoutOfOtherServerKeepsLatch) {
  auto sel = make_selector(PolicyKind::StickyFirst);
  InfraCache infra;
  stats::Rng rng{5};
  const auto first = sel->select(kZone, kTwo, infra, at_s(1), rng);
  const auto other = (first == kFast) ? kSlow : kFast;
  sel->on_timeout(kZone, other);
  EXPECT_EQ(sel->select(kZone, kTwo, infra, at_s(2), rng), first);
}

TEST(Selectors, AvoidServersInBackoff) {
  InfraCacheConfig icfg;
  icfg.backoff_threshold = 1;
  for (const PolicyKind kind :
       {PolicyKind::BindSrtt, PolicyKind::UnboundBand,
        PolicyKind::PowerDnsFactor, PolicyKind::UniformRandom,
        PolicyKind::RoundRobin, PolicyKind::StickyFirst}) {
    InfraCache infra{icfg};
    infra.report_rtt(kFast, net::Duration::millis(500), at_s(0));
    infra.report_timeout(kSlow, at_s(0));  // kSlow goes on probation
    auto sel = make_selector(kind);
    stats::Rng rng{7};
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(sel->select(kZone, kTwo, infra, at_s(1), rng), kFast)
          << to_string(kind);
    }
  }
}

TEST(Selectors, AllInBackoffStillPicksSomething) {
  InfraCacheConfig icfg;
  icfg.backoff_threshold = 1;
  InfraCache infra{icfg};
  infra.report_timeout(kFast, at_s(0));
  infra.report_timeout(kSlow, at_s(0));
  auto sel = make_selector(PolicyKind::UniformRandom);
  stats::Rng rng{9};
  const auto pick = sel->select(kZone, kTwo, infra, at_s(1), rng);
  EXPECT_TRUE(pick == kFast || pick == kSlow);
}

TEST(Mixture, DrawFollowsWeights) {
  const PolicyMixture mix{{{PolicyKind::BindSrtt, 0.8},
                           {PolicyKind::UniformRandom, 0.2}}};
  stats::Rng rng{11};
  int bind = 0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    if (mix.draw(rng) == PolicyKind::BindSrtt) ++bind;
  }
  EXPECT_NEAR(bind / double(n), 0.8, 0.02);
}

TEST(Mixture, PureAlwaysSameKind) {
  const auto mix = PolicyMixture::pure(PolicyKind::RoundRobin);
  stats::Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mix.draw(rng), PolicyKind::RoundRobin);
  }
}

TEST(Mixture, WildCoversAllPolicies) {
  const auto mix = PolicyMixture::wild();
  EXPECT_EQ(mix.weights.size(), 6u);
  double total = 0;
  for (const auto& [k, w] : mix.weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

/// Property sweep: every policy must return a member of the server list.
class AllPolicies : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(AllPolicies, AlwaysReturnsAValidServer) {
  auto sel = make_selector(GetParam());
  InfraCache infra;
  stats::Rng rng{17};
  const std::vector<net::IpAddress> servers{net::IpAddress{5},
                                            net::IpAddress{6},
                                            net::IpAddress{7}};
  for (int i = 0; i < 200; ++i) {
    const auto pick = sel->select(kZone, servers, infra, at_s(i), rng);
    EXPECT_TRUE(std::find(servers.begin(), servers.end(), pick) !=
                servers.end());
  }
}

TEST_P(AllPolicies, SingleServerAlwaysChosen) {
  auto sel = make_selector(GetParam());
  InfraCache infra;
  stats::Rng rng{19};
  const std::vector<net::IpAddress> one{net::IpAddress{9}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(sel->select(kZone, one, infra, at_s(i), rng),
              net::IpAddress{9});
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllPolicies,
    ::testing::Values(PolicyKind::BindSrtt, PolicyKind::UnboundBand,
                      PolicyKind::PowerDnsFactor, PolicyKind::UniformRandom,
                      PolicyKind::RoundRobin, PolicyKind::StickyFirst),
    [](const auto& info) { return std::string{to_string(info.param)}; });

}  // namespace
}  // namespace recwild::resolver
