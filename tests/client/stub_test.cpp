#include "client/stub.hpp"

#include <gtest/gtest.h>

#include "authns/server.hpp"
#include "resolver/resolver.hpp"

namespace recwild::client {
namespace {

/// World: one authoritative + one recursive + one stub.
struct World {
  net::Simulation sim{31};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<authns::AuthServer> auth;
  std::unique_ptr<resolver::RecursiveResolver> recursive;
  std::unique_ptr<resolver::RecursiveResolver> recursive2;
  std::unique_ptr<StubResolver> stub;

  explicit World(bool two_recursives = false, StubConfig scfg = {}) {
    params.loss_rate = 0.0;
    net_ = std::make_unique<net::Network>(sim, params);
    const auto loc = [](const char* c) {
      return net::find_location(c)->point;
    };
    const net::IpAddress auth_addr = net_->allocate_address();

    authns::Zone zone{dns::Name{}};
    dns::SoaRdata soa;
    soa.minimum = 60;
    zone.add({dns::Name{}, dns::RRClass::IN, 86400, soa});
    zone.add({dns::Name{}, dns::RRClass::IN, 86400,
              dns::NsRdata{dns::Name::parse("a.root-servers.net")}});
    zone.add({dns::Name::parse("a.root-servers.net"), dns::RRClass::IN,
              86400, dns::ARdata{auth_addr}});
    zone.add({dns::Name::parse("*.test"), dns::RRClass::IN, 5,
              dns::TxtRdata{{"ROOT"}}});

    const net::NodeId anode = net_->add_node("auth", loc("FRA"));
    authns::AuthServerConfig acfg;
    acfg.identity = "auth";
    auth = std::make_unique<authns::AuthServer>(
        *net_, anode, net::Endpoint{auth_addr, net::kDnsPort}, acfg);
    auth->add_zone(std::move(zone));
    auth->start();

    const std::vector<resolver::RootHint> hints{
        {dns::Name::parse("a.root-servers.net"), auth_addr}};

    auto make_recursive = [&](const char* name, const char* city) {
      resolver::ResolverConfig rcfg;
      rcfg.name = name;
      auto r = std::make_unique<resolver::RecursiveResolver>(
          *net_, net_->add_node(name, loc(city)), net_->allocate_address(),
          rcfg, hints, stats::Rng{42});
      r->start();
      return r;
    };
    recursive = make_recursive("rec1", "AMS");
    std::vector<net::IpAddress> upstreams{recursive->address()};
    if (two_recursives) {
      recursive2 = make_recursive("rec2", "LHR");
      upstreams.push_back(recursive2->address());
    }
    stub = std::make_unique<StubResolver>(
        *net_, net_->add_node("probe", loc("AMS")),
        net_->allocate_address(), upstreams, scfg, stats::Rng{7});
    stub->start();
  }
};

TEST(Stub, ResolvesThroughRecursive) {
  World w;
  std::vector<StubResult> results;
  w.stub->query(dns::Name::parse("hello.test"), dns::RRType::TXT,
                [&](const StubResult& r) { results.push_back(r); });
  w.sim.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].timed_out);
  EXPECT_EQ(results[0].rcode, dns::Rcode::NoError);
  ASSERT_EQ(results[0].txt.size(), 1u);
  EXPECT_EQ(results[0].txt[0], "ROOT");
  EXPECT_EQ(results[0].recursive_index, 0u);
  EXPECT_GT(results[0].elapsed.ms(), 1.0);
}

TEST(Stub, CollectsNonTxtAnswers) {
  World w;
  std::vector<StubResult> results;
  w.stub->query(dns::Name::parse("a.root-servers.net"), dns::RRType::A,
                [&](const StubResult& r) { results.push_back(r); });
  w.sim.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].txt.empty());
  ASSERT_EQ(results[0].answers.size(), 1u);
  EXPECT_EQ(results[0].answers[0].type(), dns::RRType::A);
}

TEST(Stub, FailsOverToSecondRecursive) {
  StubConfig scfg;
  scfg.attempt_timeout = net::Duration::seconds(2);
  World w{/*two_recursives=*/true, scfg};
  w.recursive->stop();  // first recursive unreachable
  std::vector<StubResult> results;
  w.stub->query(dns::Name::parse("x.test"), dns::RRType::TXT,
                [&](const StubResult& r) { results.push_back(r); });
  w.sim.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].timed_out);
  EXPECT_EQ(results[0].recursive_index, 1u);
  // The failover cost at least one attempt timeout.
  EXPECT_GT(results[0].elapsed.sec(), 2.0);
}

TEST(Stub, TimesOutWhenAllRecursivesDead) {
  StubConfig scfg;
  scfg.attempt_timeout = net::Duration::seconds(1);
  scfg.max_rounds = 2;
  World w{false, scfg};
  w.recursive->stop();
  std::vector<StubResult> results;
  w.stub->query(dns::Name::parse("x.test"), dns::RRType::TXT,
                [&](const StubResult& r) { results.push_back(r); });
  w.sim.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].timed_out);
  // 2 rounds x 1 recursive x 1 s.
  EXPECT_NEAR(results[0].elapsed.sec(), 2.0, 0.1);
}

TEST(Stub, ConcurrentQueriesKeptApart) {
  World w;
  std::vector<std::string> names;
  for (const char* n : {"one.test", "two.test", "three.test"}) {
    w.stub->query(dns::Name::parse(n), dns::RRType::TXT,
                  [&names](const StubResult& r) {
                    names.push_back(r.question.qname.to_string());
                  });
  }
  w.sim.run();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_NE(std::find(names.begin(), names.end(), "one.test."),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "three.test."),
            names.end());
}

}  // namespace
}  // namespace recwild::client
