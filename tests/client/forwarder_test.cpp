#include "client/forwarder.hpp"

#include <gtest/gtest.h>

#include "experiment/analysis.hpp"
#include "experiment/campaign.hpp"
#include "experiment/testbed.hpp"

namespace recwild::client {
namespace {

/// Direct world: stub -> forwarder -> recursive -> authoritative.
struct World {
  net::Simulation sim{55};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<authns::AuthServer> auth;
  std::unique_ptr<resolver::RecursiveResolver> recursive;
  std::unique_ptr<Forwarder> forwarder;
  std::unique_ptr<StubResolver> stub;

  explicit World(ForwarderConfig fcfg = {}) {
    params.loss_rate = 0;
    net_ = std::make_unique<net::Network>(sim, params);
    const auto loc = [](const char* c) {
      return net::find_location(c)->point;
    };

    const net::IpAddress auth_addr = net_->allocate_address();
    authns::Zone zone{dns::Name{}};
    dns::SoaRdata soa;
    soa.minimum = 60;
    zone.add({dns::Name{}, dns::RRClass::IN, 86400, soa});
    zone.add({dns::Name{}, dns::RRClass::IN, 86400,
              dns::NsRdata{dns::Name::parse("ns.test")}});
    zone.add({dns::Name::parse("ns.test"), dns::RRClass::IN, 86400,
              dns::ARdata{auth_addr}});
    zone.add({dns::Name::parse("fixed.test"), dns::RRClass::IN, 300,
              dns::TxtRdata{{"payload"}}});
    zone.add({dns::Name::parse("*.w"), dns::RRClass::IN, 5,
              dns::TxtRdata{{"wild"}}});
    authns::AuthServerConfig acfg;
    acfg.identity = "auth";
    auth = std::make_unique<authns::AuthServer>(
        *net_, net_->add_node("auth", loc("FRA")),
        net::Endpoint{auth_addr, net::kDnsPort}, acfg);
    auth->add_zone(std::move(zone));
    auth->start();

    resolver::ResolverConfig rcfg;
    rcfg.name = "isp";
    recursive = std::make_unique<resolver::RecursiveResolver>(
        *net_, net_->add_node("isp", loc("AMS")), net_->allocate_address(),
        rcfg, std::vector<resolver::RootHint>{{dns::Name::parse("ns.test"),
                                               auth_addr}},
        stats::Rng{2});
    recursive->start();

    const net::NodeId home = net_->add_node("home", loc("AMS"));
    forwarder = std::make_unique<Forwarder>(
        *net_, home, net_->allocate_address(), recursive->address(), fcfg,
        stats::Rng{3});
    forwarder->start();

    stub = std::make_unique<StubResolver>(
        *net_, home, net_->allocate_address(),
        std::vector<net::IpAddress>{forwarder->address()}, StubConfig{},
        stats::Rng{4});
    stub->start();
  }

  StubResult ask(const char* name) {
    StubResult result;
    stub->query(dns::Name::parse(name), dns::RRType::TXT,
                [&](const StubResult& r) { result = r; });
    sim.run();
    return result;
  }
};

TEST(Forwarder, RelaysQueriesAndAnswers) {
  World w;
  const auto r = w.ask("fixed.test");
  EXPECT_FALSE(r.timed_out);
  ASSERT_EQ(r.txt.size(), 1u);
  EXPECT_EQ(r.txt[0], "payload");
  EXPECT_EQ(w.forwarder->forwarded(), 1u);
  EXPECT_EQ(w.recursive->client_queries(), 1u);
}

TEST(Forwarder, PreservesClientTransactionId) {
  // The stub matches on its own id; a broken forwarder would break this.
  World w;
  const auto r = w.ask("fixed.test");
  EXPECT_FALSE(r.timed_out);
}

TEST(Forwarder, LocalCacheServesRepeats) {
  World w;
  (void)w.ask("fixed.test");
  const auto second = w.ask("fixed.test");
  EXPECT_FALSE(second.timed_out);
  EXPECT_EQ(w.forwarder->cache_hits(), 1u);
  EXPECT_EQ(w.forwarder->forwarded(), 1u);  // no second upstream query
  EXPECT_EQ(w.recursive->client_queries(), 1u);
}

TEST(Forwarder, CacheDisabledAlwaysForwards) {
  ForwarderConfig fcfg;
  fcfg.cache_entries = 0;
  World w{fcfg};
  (void)w.ask("fixed.test");
  (void)w.ask("fixed.test");
  EXPECT_EQ(w.forwarder->forwarded(), 2u);
  EXPECT_EQ(w.forwarder->cache_hits(), 0u);
}

TEST(Forwarder, UpstreamDeadTimesOutCleanly) {
  ForwarderConfig fcfg;
  fcfg.timeout = net::Duration::seconds(1);
  World w{fcfg};
  w.recursive->stop();
  const auto r = w.ask("fixed.test");
  EXPECT_TRUE(r.timed_out);
  EXPECT_GE(w.forwarder->timeouts(), 1u);
}

TEST(Forwarder, MiddleboxesDoNotDistortTheMeasurement) {
  // The paper's §3.1 verification: client-side results with middleboxes in
  // the path match the no-middlebox view. Run the 2B campaign with 0% and
  // 40% of probes behind forwarders and compare the preference stats.
  auto run = [](double fraction) {
    experiment::TestbedConfig cfg;
    cfg.seed = 31337;
    cfg.population.probes = 250;
    cfg.population.forwarder_fraction = fraction;
    cfg.test_sites = {"DUB", "FRA"};
    experiment::Testbed tb{cfg};
    experiment::CampaignConfig cc;
    cc.queries_per_vp = 20;
    return analyze_preferences(run_campaign(tb, cc));
  };
  const auto without = run(0.0);
  const auto with = run(0.4);
  EXPECT_GT(with.vps.size(), 200u);  // VPs still covered both NSes
  EXPECT_NEAR(without.weak_fraction, with.weak_fraction, 0.12);
  EXPECT_NEAR(without.strong_fraction, with.strong_fraction, 0.12);
}

}  // namespace
}  // namespace recwild::client
