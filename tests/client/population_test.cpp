#include "client/population.hpp"

#include <gtest/gtest.h>

#include <map>

namespace recwild::client {
namespace {

struct Fixture {
  net::Simulation sim{99};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  std::vector<resolver::RootHint> hints;

  Fixture() {
    params.loss_rate = 0;
    net_ = std::make_unique<net::Network>(sim, params);
    hints.push_back(resolver::RootHint{
        dns::Name::parse("a.root-servers.net"), net_->allocate_address()});
  }

  Population build(PopulationConfig cfg) {
    return build_population(*net_, cfg, hints, stats::Rng{1});
  }
};

TEST(Population, CreatesRequestedProbeCount) {
  Fixture f;
  PopulationConfig cfg;
  cfg.probes = 300;
  const auto pop = f.build(cfg);
  EXPECT_EQ(pop.vps().size(), 300u);
}

TEST(Population, ContinentalSkewFollowsWeights) {
  Fixture f;
  PopulationConfig cfg;
  cfg.probes = 2000;
  const auto pop = f.build(cfg);
  std::map<net::Continent, int> counts;
  for (const auto& vp : pop.vps()) ++counts[vp.continent];
  // Europe dominates (paper: 6221 of 8685 ~ 72%).
  EXPECT_GT(counts[net::Continent::Europe], 1100);
  // Every continent is represented.
  for (const net::Continent c : net::all_continents()) {
    EXPECT_GT(counts[c], 0) << net::continent_name(c);
  }
}

TEST(Population, RecursivesClusterProbes) {
  Fixture f;
  PopulationConfig cfg;
  cfg.probes = 500;
  cfg.mean_probes_per_as = 3.0;
  const auto pop = f.build(cfg);
  // Fewer recursives than probes (AS clustering), but more than publics.
  EXPECT_LT(pop.recursives().size(), 500u);
  EXPECT_GT(pop.recursives().size(), cfg.public_resolvers);
}

TEST(Population, PublicResolversMarked) {
  Fixture f;
  PopulationConfig cfg;
  cfg.probes = 100;
  cfg.public_resolvers = 4;
  const auto pop = f.build(cfg);
  std::size_t publics = 0;
  for (const auto& r : pop.recursives()) {
    if (r.is_public) ++publics;
  }
  EXPECT_EQ(publics, 4u);
}

TEST(Population, SomeProbesUsePublicResolvers) {
  Fixture f;
  PopulationConfig cfg;
  cfg.probes = 1000;
  cfg.public_resolver_fraction = 0.3;
  const auto pop = f.build(cfg);
  std::vector<net::IpAddress> public_addrs;
  for (const auto& r : pop.recursives()) {
    if (r.is_public) public_addrs.push_back(r.resolver->address());
  }
  std::size_t using_public = 0;
  for (const auto& vp : pop.vps()) {
    const auto& ups = vp.stub->recursives();
    if (std::find(public_addrs.begin(), public_addrs.end(), ups.front()) !=
        public_addrs.end()) {
      ++using_public;
    }
  }
  EXPECT_NEAR(using_public / 1000.0, 0.3, 0.06);
}

TEST(Population, SecondRecursiveFraction) {
  Fixture f;
  PopulationConfig cfg;
  cfg.probes = 1000;
  cfg.second_recursive_fraction = 0.25;
  const auto pop = f.build(cfg);
  std::size_t with_two = 0;
  for (const auto& vp : pop.vps()) {
    if (vp.stub->recursives().size() >= 2) ++with_two;
  }
  EXPECT_NEAR(with_two / 1000.0, 0.25, 0.06);
}

TEST(Population, MixtureProducesPolicyDiversity) {
  Fixture f;
  PopulationConfig cfg;
  cfg.probes = 600;
  const auto pop = f.build(cfg);
  std::map<resolver::PolicyKind, int> kinds;
  for (const auto& r : pop.recursives()) ++kinds[r.resolver->policy()];
  EXPECT_GE(kinds.size(), 4u);  // at least 4 of the 6 kinds present
}

TEST(Population, PurePolicyAblation) {
  Fixture f;
  PopulationConfig cfg;
  cfg.probes = 200;
  cfg.mixture = resolver::PolicyMixture::pure(resolver::PolicyKind::RoundRobin);
  cfg.public_resolvers = 0;
  cfg.public_resolver_fraction = 0;
  const auto pop = f.build(cfg);
  for (const auto& r : pop.recursives()) {
    EXPECT_EQ(r.resolver->policy(), resolver::PolicyKind::RoundRobin);
  }
}

TEST(Population, LookupByAddress) {
  Fixture f;
  PopulationConfig cfg;
  cfg.probes = 50;
  const auto pop = f.build(cfg);
  const auto& first = pop.recursives().front();
  const auto* found = pop.recursive_by_address(first.resolver->address());
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found, &first);
  EXPECT_EQ(pop.recursive_by_address(net::IpAddress{0xffffffff}), nullptr);
}

TEST(Population, DeterministicAcrossRebuilds) {
  PopulationConfig cfg;
  cfg.probes = 100;
  Fixture f1;
  Fixture f2;
  const auto p1 = f1.build(cfg);
  const auto p2 = f2.build(cfg);
  ASSERT_EQ(p1.vps().size(), p2.vps().size());
  ASSERT_EQ(p1.recursives().size(), p2.recursives().size());
  for (std::size_t i = 0; i < p1.vps().size(); ++i) {
    EXPECT_EQ(p1.vps()[i].continent, p2.vps()[i].continent);
    EXPECT_DOUBLE_EQ(p1.vps()[i].location.lat_deg,
                     p2.vps()[i].location.lat_deg);
  }
  for (std::size_t i = 0; i < p1.recursives().size(); ++i) {
    EXPECT_EQ(p1.recursives()[i].resolver->policy(),
              p2.recursives()[i].resolver->policy());
  }
}

}  // namespace
}  // namespace recwild::client
