// Adversarial-workload invariants over full campaigns:
//  * metrics JSON and canonical trace stay byte-identical for shard counts
//    1, 2 and 4 while an attack schedule is active (defenses armed or not)
//    — the attack path must obey the engine's determinism contract;
//  * the resolver's per-resolution fetch limit is honored against an NXNS
//    referral wider than the cap, and measurably cuts the victim-side
//    query load.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "attack/generator.hpp"
#include "attack/schedule.hpp"
#include "experiment/campaign.hpp"
#include "experiment/testbed.hpp"
#include "obs/names.hpp"

namespace recwild::attack {
namespace {

using experiment::CampaignConfig;
using experiment::Testbed;
using experiment::TestbedConfig;

enum class Defense { None, FetchOnly, Full };

TestbedConfig attacked_config(Defense defense) {
  TestbedConfig cfg;
  cfg.seed = 77;
  cfg.population.probes = 48;
  cfg.test_sites = {"DUB", "FRA"};
  cfg.trace_decisions = true;

  AttackSchedule sched;
  sched.zone().chains = 4;
  sched.zone().fanout = 8;
  AttackEvent nxns;
  nxns.kind = AttackKind::Nxns;
  nxns.start = net::SimTime::origin() + net::Duration::minutes(1);
  nxns.end = net::SimTime::origin() + net::Duration::minutes(6);
  nxns.interval = net::Duration::seconds(5);
  nxns.bots = 8;
  sched.add(nxns);
  AttackEvent torture = nxns;
  torture.kind = AttackKind::WaterTorture;
  torture.start = net::SimTime::origin() + net::Duration::minutes(3);
  torture.bots = 6;
  sched.add(torture);
  cfg.attack = sched;

  if (defense != Defense::None) {
    cfg.population.resolver_template.max_fetches_per_resolution = 2;
    cfg.population.resolver_template.fetches_per_zone = 4;
  }
  if (defense == Defense::Full) {
    cfg.rrl.rate = 10;
    cfg.rrl.slip = 2;
    cfg.referral_fanout_cap = 2;
  }
  return cfg;
}

struct AttackRun {
  std::string metrics_json;
  std::string trace_tsv;
  std::uint64_t injected = 0;
  std::uint64_t victim_attack = 0;
  std::uint64_t fetch_spawned = 0;
  std::uint64_t fetch_capped = 0;
  std::size_t pending_after = 0;
};

AttackRun run_attacked(Defense defense, std::size_t shards) {
  Testbed tb{attacked_config(defense)};
  CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 4;
  cc.shards = shards;
  const auto result = run_campaign(tb, cc);

  AttackRun run;
  run.metrics_json = result.metrics.to_json(obs::SnapshotStyle::MergeSafe);
  std::ostringstream trace_out;
  obs::write_trace(trace_out, tb.trace().canonical());
  run.trace_tsv = trace_out.str();
  run.injected =
      result.metrics.counter_value(obs::names::kAttackQueriesInjected);
  run.fetch_spawned =
      result.metrics.counter_value(obs::names::kResolverFetchSpawned);
  run.fetch_capped = result.metrics.counter_value(
      obs::names::kResolverFetchResolutionCapped);
  for (auto& svc : tb.test_services()) {
    for (auto& site : svc.sites()) {
      for (const auto& entry : site.server->log().entries()) {
        if (is_attack_query_name(entry.qname)) ++run.victim_attack;
      }
    }
  }
  run.pending_after = tb.sim().pending();
  return run;
}

class AttackInvariants : public ::testing::TestWithParam<Defense> {};

TEST_P(AttackInvariants, ShardCountNeverChangesTheBytes) {
  const Defense defense = GetParam();
  const AttackRun serial = run_attacked(defense, 1);
  const AttackRun two = run_attacked(defense, 2);
  const AttackRun four = run_attacked(defense, 4);

  // The attack actually ran in every replica arrangement.
  EXPECT_GT(serial.injected, 0u);
  EXPECT_EQ(serial.injected, two.injected);
  EXPECT_EQ(serial.injected, four.injected);

  EXPECT_EQ(serial.metrics_json, two.metrics_json);
  EXPECT_EQ(serial.metrics_json, four.metrics_json);
  EXPECT_FALSE(serial.trace_tsv.empty());
  EXPECT_EQ(serial.trace_tsv, two.trace_tsv);
  EXPECT_EQ(serial.trace_tsv, four.trace_tsv);

  EXPECT_EQ(serial.pending_after, 0u);
  EXPECT_EQ(two.pending_after, 0u);
  EXPECT_EQ(four.pending_after, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    UndefendedAndDefended, AttackInvariants,
    ::testing::Values(Defense::None, Defense::Full),
    [](const ::testing::TestParamInfo<Defense>& info) {
      return std::string{info.param == Defense::None ? "undefended"
                                                     : "defended"};
    });

TEST(FetchLimit, CapHonoredAgainstWideNxnsReferral) {
  // fanout 8 vs max_fetches_per_resolution 2, with no server-side fanout
  // cap in the way: the resolver itself must hit the cap, spawn strictly
  // fewer glueless address fetches, and the victims must see strictly less
  // attack traffic.
  const AttackRun open = run_attacked(Defense::None, 1);
  const AttackRun capped = run_attacked(Defense::FetchOnly, 1);

  EXPECT_GT(open.victim_attack, 0u);
  EXPECT_GT(capped.fetch_capped, 0u);
  EXPECT_LT(capped.fetch_spawned, open.fetch_spawned);
  EXPECT_LT(capped.victim_attack, open.victim_attack);
}

}  // namespace
}  // namespace recwild::attack
