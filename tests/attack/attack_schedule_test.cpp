#include "attack/schedule.hpp"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace recwild::attack {
namespace {

AttackSchedule sample_schedule() {
  AttackSchedule s;
  s.add({AttackKind::Nxns, net::SimTime::from_micros(60'000'000),
         net::SimTime::from_micros(360'000'000), net::Duration::seconds(2),
         16});
  s.add({AttackKind::WaterTorture, net::SimTime::from_micros(120'000'000),
         net::SimTime::from_micros(600'000'000), net::Duration::millis(500),
         4});
  return s;
}

TEST(AttackKindNames, RoundTripEveryKind) {
  for (const AttackKind k : {AttackKind::Nxns, AttackKind::WaterTorture}) {
    EXPECT_EQ(attack_kind_from_string(to_string(k)), k);
  }
  EXPECT_THROW(attack_kind_from_string("slowloris"), std::invalid_argument);
}

TEST(AttackEvent, ActiveIsHalfOpen) {
  AttackEvent e;
  e.start = net::SimTime::from_micros(100);
  e.end = net::SimTime::from_micros(200);
  EXPECT_FALSE(e.active(net::SimTime::from_micros(99)));
  EXPECT_TRUE(e.active(net::SimTime::from_micros(100)));
  EXPECT_TRUE(e.active(net::SimTime::from_micros(199)));
  EXPECT_FALSE(e.active(net::SimTime::from_micros(200)));
}

TEST(AttackScheduleValidate, AcceptsSaneSchedule) {
  EXPECT_NO_THROW(sample_schedule().validate());
}

TEST(AttackScheduleValidate, RejectsEmptyWindow) {
  AttackSchedule s;
  s.add({AttackKind::Nxns, net::SimTime::from_micros(5),
         net::SimTime::from_micros(5), net::Duration::seconds(1), 1});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(AttackScheduleValidate, RejectsZeroBots) {
  AttackSchedule s;
  s.add({AttackKind::Nxns, net::SimTime::from_micros(0),
         net::SimTime::from_micros(10), net::Duration::seconds(1), 0});
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(AttackScheduleValidate, RejectsBadZoneShape) {
  AttackSchedule s = sample_schedule();
  s.zone().fanout = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.zone().fanout = 12;
  s.zone().victim_domain.clear();
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(AttackScheduleTsv, RoundTripsExactly) {
  const AttackSchedule original = sample_schedule();
  std::ostringstream out;
  write_schedule(out, original);

  std::istringstream in{out.str()};
  const AttackSchedule parsed = read_schedule(in);
  EXPECT_EQ(parsed.events(), original.events());
}

TEST(AttackScheduleTsv, SkipsCommentsAndRejectsGarbage) {
  std::istringstream ok{
      "# a comment\n"
      "\n"
      "nxns\t0\t1000000\t250000\t3\n"};
  const AttackSchedule parsed = read_schedule(ok);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.events()[0].kind, AttackKind::Nxns);
  EXPECT_EQ(parsed.events()[0].bots, 3);

  std::istringstream bad{"nxns\tnot_a_number\t1\t1\t1\n"};
  EXPECT_THROW(read_schedule(bad), std::runtime_error);
}

}  // namespace
}  // namespace recwild::attack
