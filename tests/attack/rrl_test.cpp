// RRL regressions: the unit-level window/slip contract, and the
// server-level guarantees the defense rests on — a TC slip really sets TC
// (pushing real clients to TCP), and stream (TCP) queries are never
// rate-limited (the transport proves the source address).
#include "authns/rrl.hpp"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "authns/server.hpp"
#include "obs/names.hpp"

namespace recwild::authns {
namespace {

constexpr std::uint32_t kClient = 0x0a00002a;

net::SimTime at_ms(std::int64_t ms) {
  return net::SimTime::from_micros(ms * 1000);
}

TEST(RrlUnit, DisabledAlwaysSends) {
  Rrl rrl;  // default config: rate 0 = off
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rrl.check(kClient, RrlCategory::Answer, at_ms(0)),
              RrlAction::Send);
  }
  EXPECT_EQ(rrl.bucket_count(), 0u);
}

TEST(RrlUnit, FirstRatePassThenSlipEverySlipth) {
  RrlConfig cfg;
  cfg.rate = 3;
  cfg.slip = 2;
  Rrl rrl{cfg};
  std::vector<RrlAction> got;
  for (int i = 0; i < 9; ++i) {
    got.push_back(rrl.check(kClient, RrlCategory::Answer, at_ms(i)));
  }
  const std::vector<RrlAction> want{
      RrlAction::Send, RrlAction::Send, RrlAction::Send,  // under rate
      RrlAction::Drop, RrlAction::Slip,                   // limited 1, 2
      RrlAction::Drop, RrlAction::Slip,                   // limited 3, 4
      RrlAction::Drop, RrlAction::Slip};
  EXPECT_EQ(got, want);
}

TEST(RrlUnit, ZeroSlipMeansPureDrop) {
  RrlConfig cfg;
  cfg.rate = 1;
  cfg.slip = 0;
  Rrl rrl{cfg};
  EXPECT_EQ(rrl.check(kClient, RrlCategory::Answer, at_ms(0)),
            RrlAction::Send);
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(rrl.check(kClient, RrlCategory::Answer, at_ms(i)),
              RrlAction::Drop);
  }
}

TEST(RrlUnit, WindowElapseResetsTheBudget) {
  RrlConfig cfg;
  cfg.rate = 2;
  cfg.window = net::Duration::seconds(1);
  Rrl rrl{cfg};
  EXPECT_EQ(rrl.check(kClient, RrlCategory::Answer, at_ms(0)),
            RrlAction::Send);
  EXPECT_EQ(rrl.check(kClient, RrlCategory::Answer, at_ms(10)),
            RrlAction::Send);
  EXPECT_NE(rrl.check(kClient, RrlCategory::Answer, at_ms(20)),
            RrlAction::Send);
  // One full window later the client gets a fresh budget.
  EXPECT_EQ(rrl.check(kClient, RrlCategory::Answer, at_ms(1'000)),
            RrlAction::Send);
}

TEST(RrlUnit, CategoriesAndClientsAccountSeparately) {
  RrlConfig cfg;
  cfg.rate = 1;
  Rrl rrl{cfg};
  EXPECT_EQ(rrl.check(kClient, RrlCategory::Referral, at_ms(0)),
            RrlAction::Send);
  EXPECT_NE(rrl.check(kClient, RrlCategory::Referral, at_ms(1)),
            RrlAction::Send);
  // A different category of the same client, and the same category of a
  // different client, both still have budget.
  EXPECT_EQ(rrl.check(kClient, RrlCategory::NxDomain, at_ms(2)),
            RrlAction::Send);
  EXPECT_EQ(rrl.check(kClient + 1, RrlCategory::Referral, at_ms(3)),
            RrlAction::Send);
}

TEST(RrlUnit, SweepBoundsTheBucketTable) {
  RrlConfig cfg;
  cfg.rate = 1;
  cfg.window = net::Duration::seconds(1);
  cfg.max_table = 8;
  Rrl rrl{cfg};
  // A spoofed-source flood: every query a new client address. Old buckets
  // are swept once stale, so the table never grows without bound.
  for (std::uint32_t i = 0; i < 10'000; ++i) {
    (void)rrl.check(i, RrlCategory::Answer, at_ms(i));
  }
  EXPECT_LE(rrl.bucket_count(), 2'500u);
}

TEST(MakeSlipReply, IsAMinimalTruncatedEcho) {
  const dns::Message q = dns::Message::make_query(
      99, dns::Name::parse("x.ourtestdomain.nl"), dns::RRType::TXT);
  const dns::Message slip = make_slip_reply(q);
  EXPECT_TRUE(slip.header.qr);
  EXPECT_TRUE(slip.header.tc);
  EXPECT_EQ(slip.header.id, 99);
  EXPECT_TRUE(slip.answers.empty());
}

// --------------------------------------------------------------------------
// Server level: the simulated AuthServer with RRL armed.

constexpr const char* kZoneText = R"(
$TTL 3600
@    IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@    IN NS  ns1
ns1  IN A   192.0.2.1
*    5 IN TXT "FRA"
)";

struct RrlWorld {
  net::Simulation sim{77};
  net::LatencyParams params{};
  std::unique_ptr<net::Network> net;
  net::NodeId server_node;
  net::NodeId client_node;
  net::Endpoint server_ep;
  net::Endpoint client_ep;
  std::unique_ptr<AuthServer> server;
  std::vector<dns::Message> received;

  RrlWorld() {
    params.loss_rate = 0.0;
    net = std::make_unique<net::Network>(sim, params);
    server_node = net->add_node("auth", net::find_location("FRA")->point);
    client_node = net->add_node("client", net::find_location("AMS")->point);
    server_ep = net::Endpoint{net->allocate_address(), net::kDnsPort};
    client_ep = net::Endpoint{net->allocate_address(), 5555};
    AuthServerConfig cfg;
    cfg.identity = "rrl.fra";
    server = std::make_unique<AuthServer>(*net, server_node, server_ep, cfg);
    server->add_zone(
        Zone::from_text(dns::Name::parse("ourtestdomain.nl"), kZoneText));
    server->start();
    RrlConfig rrl;
    rrl.rate = 2;
    rrl.slip = 2;
    server->set_rrl(rrl);
    net->listen(client_node, client_ep,
                [this](const net::Datagram& d, net::NodeId) {
                  received.push_back(dns::decode_message(d.payload));
                });
  }

  dns::Message query(std::uint16_t id) {
    // The SAME name every time: responses from one client in one window,
    // one RRL category — exactly the reflection pattern RRL throttles.
    return dns::Message::make_query(
        id, dns::Name::parse("abc.ourtestdomain.nl"), dns::RRType::TXT);
  }

  void flood_udp(int n) {
    for (int i = 0; i < n; ++i) {
      net->send(client_node, client_ep, server_ep,
                dns::encode_message(query(static_cast<std::uint16_t>(i))));
    }
    sim.run();
  }
};

TEST(RrlServer, UdpFloodIsLimitedAndSlipsSetTc) {
  RrlWorld w;
  w.flood_udp(10);
  // rate 2, slip 2: 2 full answers + every 2nd limited response slips.
  // 8 limited -> 4 slips; 4 pure drops never arrive.
  ASSERT_EQ(w.received.size(), 6u);
  int full = 0;
  int slips = 0;
  for (const auto& r : w.received) {
    if (r.header.tc) {
      ++slips;
      EXPECT_TRUE(r.answers.empty());  // minimal: retry over TCP, no data
    } else {
      ++full;
      EXPECT_EQ(r.answers.size(), 1u);
    }
  }
  EXPECT_EQ(full, 2);
  EXPECT_EQ(slips, 4);
  const auto snap = w.sim.metrics().snapshot();
  EXPECT_EQ(snap.counter_value(obs::names::kRrlDropped), 4u);
  EXPECT_EQ(snap.counter_value(obs::names::kRrlSlipped), 4u);
}

TEST(RrlServer, TcpIsNeverRateLimited) {
  RrlWorld w;
  // The same flood, but over the stream transport: every query must be
  // answered in full — TCP cannot be spoofed, so limiting it would only
  // punish the real clients the TC slips just redirected here.
  for (int i = 0; i < 10; ++i) {
    w.net->send_stream(
        w.client_node, w.client_ep, w.server_ep,
        dns::encode_message(w.query(static_cast<std::uint16_t>(100 + i))));
  }
  w.sim.run();
  ASSERT_EQ(w.received.size(), 10u);
  for (const auto& r : w.received) {
    EXPECT_FALSE(r.header.tc);
    EXPECT_EQ(r.answers.size(), 1u);
  }
  const auto snap = w.sim.metrics().snapshot();
  EXPECT_EQ(snap.counter_value(obs::names::kRrlDropped), 0u);
  EXPECT_EQ(snap.counter_value(obs::names::kRrlSlipped), 0u);
}

TEST(RrlServer, DisarmingRestoresFullService) {
  RrlWorld w;
  w.flood_udp(10);
  w.received.clear();
  w.server->set_rrl(RrlConfig{});  // rate 0 = off
  w.flood_udp(5);
  EXPECT_EQ(w.received.size(), 5u);
}

}  // namespace
}  // namespace recwild::authns
