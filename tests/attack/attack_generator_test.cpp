#include "attack/generator.hpp"

#include <gtest/gtest.h>

namespace recwild::attack {
namespace {

NxnsZoneConfig sample_config() {
  NxnsZoneConfig cfg;
  cfg.attacker_domain = "atk.nl";
  cfg.victim_domain = "ourtestdomain.nl";
  cfg.chains = 3;
  cfg.fanout = 5;
  cfg.depth = 2;
  return cfg;
}

TEST(MakeNxnsZones, OneApexPlusOneZonePerIntermediateStep) {
  const NxnsZoneConfig cfg = sample_config();
  const auto zones = make_nxns_zones(
      cfg, dns::Name::parse("ns.atk.nl"), net::IpAddress{0x0a000001});
  // depth 2: the apex delegates step 1 of each chain, and each chain's
  // step-1 zone carries the final (glueless) delegation.
  ASSERT_EQ(zones.size(), 1u + 3u);
  EXPECT_EQ(zones[0].origin(), dns::Name::parse("atk.nl"));
  for (const auto& zone : zones) EXPECT_TRUE(zone.validate().empty());
}

TEST(MakeNxnsZones, ApexHasGlueAndInternalDelegationsStayGlued) {
  const NxnsZoneConfig cfg = sample_config();
  const auto zones = make_nxns_zones(
      cfg, dns::Name::parse("ns.atk.nl"), net::IpAddress{0x0a000001});
  const authns::Zone& apex = zones[0];
  // The apex nameserver is glued (in-bailiwick A record)...
  EXPECT_NE(apex.find(dns::Name::parse("ns.atk.nl"), dns::RRType::A),
            nullptr);
  // ...and every chain's first step delegates back to that same glued host,
  // keeping the walk inside attacker infrastructure until the last step.
  const auto* step1 = apex.find(dns::Name::parse("c0.atk.nl"),
                                dns::RRType::NS);
  ASSERT_NE(step1, nullptr);
  ASSERT_EQ(step1->rdatas.size(), 1u);
  EXPECT_EQ(std::get<dns::NsRdata>(step1->rdatas[0]).nsdname,
            dns::Name::parse("ns.atk.nl"));
}

TEST(MakeNxnsZones, FinalDelegationNamesFanoutGluelessVictimHosts) {
  const NxnsZoneConfig cfg = sample_config();
  const auto zones = make_nxns_zones(
      cfg, dns::Name::parse("ns.atk.nl"), net::IpAddress{0x0a000001});
  // Chain 1's intermediate zone owns the attack delegation.
  const authns::Zone* chain1 = nullptr;
  for (const auto& z : zones) {
    if (z.origin() == dns::Name::parse("c1.atk.nl")) chain1 = &z;
  }
  ASSERT_NE(chain1, nullptr);
  const auto* final_ns = chain1->find(dns::Name::parse("g.c1.atk.nl"),
                                      dns::RRType::NS);
  ASSERT_NE(final_ns, nullptr);
  ASSERT_EQ(final_ns->rdatas.size(), 5u);
  for (const auto& rdata : final_ns->rdatas) {
    const dns::Name& target = std::get<dns::NsRdata>(rdata).nsdname;
    // Glueless by construction: the target lives in the victim's domain...
    EXPECT_TRUE(target.is_subdomain_of(
        dns::Name::parse("ourtestdomain.nl")));
    // ...and no zone in the attacker forest carries an address for it.
    for (const auto& z : zones) {
      EXPECT_EQ(z.find(target, dns::RRType::A), nullptr);
    }
    EXPECT_TRUE(is_attack_query_name(target));
  }
  // Chain 1's slice starts at v5 (chain * fanout).
  EXPECT_EQ(std::get<dns::NsRdata>(final_ns->rdatas[0]).nsdname,
            dns::Name::parse("v5.ourtestdomain.nl"));
}

TEST(QueryNames, DeterministicInTheRngStream) {
  const NxnsZoneConfig cfg = sample_config();
  stats::Rng a{1234};
  stats::Rng b{1234};
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(nxns_query_name(cfg, a), nxns_query_name(cfg, b));
  }
  stats::Rng c{1234};
  stats::Rng d{5678};
  EXPECT_NE(nxns_query_name(cfg, c), nxns_query_name(cfg, d));
}

TEST(QueryNames, NxnsTriggerSitsBelowTheFinalDelegation) {
  const NxnsZoneConfig cfg = sample_config();
  stats::Rng rng{7};
  const dns::Name q = nxns_query_name(cfg, rng);
  EXPECT_TRUE(q.is_subdomain_of(dns::Name::parse("atk.nl")));
  // x<16 hex> cache-buster below g.c<chain>.atk.nl (depth 2).
  EXPECT_EQ(q.label_count(), 5u);
  EXPECT_EQ(q.label(0)[0], 'x');
  EXPECT_EQ(q.label(0).size(), 17u);
  EXPECT_EQ(q.label(1), "g");
}

TEST(QueryNames, WaterTortureLandsOnTheVictim) {
  stats::Rng rng{7};
  const dns::Name victim = dns::Name::parse("ourtestdomain.nl");
  const dns::Name q = water_torture_query_name(victim, rng);
  EXPECT_TRUE(q.is_subdomain_of(victim));
  EXPECT_EQ(q.label_count(), 3u);
  EXPECT_EQ(q.label(0)[0], 'w');
  EXPECT_EQ(q.label(0).size(), 17u);
  EXPECT_TRUE(is_attack_query_name(q));
}

TEST(IsAttackQueryName, SeparatesAttackFromCampaignTraffic) {
  EXPECT_TRUE(is_attack_query_name(dns::Name::parse("v12.ourtestdomain.nl")));
  EXPECT_TRUE(is_attack_query_name(
      dns::Name::parse("w0123456789abcdef.ourtestdomain.nl")));
  // The campaign's cache-busting TXT labels and infrastructure names.
  EXPECT_FALSE(is_attack_query_name(
      dns::Name::parse("q512x3.ourtestdomain.nl")));
  EXPECT_FALSE(is_attack_query_name(
      dns::Name::parse("ns-fra.ourtestdomain.nl")));
  EXPECT_FALSE(is_attack_query_name(dns::Name::parse("www.example.com")));
  // Near-misses: wrong digit set or wrong length.
  EXPECT_FALSE(is_attack_query_name(dns::Name::parse("v12a.x.nl")));
  EXPECT_FALSE(is_attack_query_name(dns::Name::parse("wxyz.x.nl")));
  EXPECT_FALSE(is_attack_query_name(dns::Name{}));
}

}  // namespace
}  // namespace recwild::attack
