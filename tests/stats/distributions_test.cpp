#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace recwild::stats {
namespace {

TEST(Zipf, RejectsBadArguments) {
  EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(Zipf(10, 0.0), std::invalid_argument);
  EXPECT_THROW(Zipf(10, -1.0), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  const Zipf z{50, 1.1};
  double sum = 0;
  for (std::size_t k = 1; k <= 50; ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Zipf, PmfIsDecreasing) {
  const Zipf z{20, 1.3};
  for (std::size_t k = 2; k <= 20; ++k) {
    EXPECT_LT(z.pmf(k), z.pmf(k - 1));
  }
}

TEST(Zipf, PmfOutOfRangeIsZero) {
  const Zipf z{5, 1.0};
  EXPECT_DOUBLE_EQ(z.pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(z.pmf(6), 0.0);
}

TEST(Zipf, SamplesWithinRange) {
  const Zipf z{10, 1.0};
  Rng rng{1};
  for (int i = 0; i < 10'000; ++i) {
    const auto k = z.sample(rng);
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, 10u);
  }
}

TEST(Zipf, EmpiricalMatchesPmf) {
  const Zipf z{8, 1.2};
  Rng rng{2};
  std::vector<int> counts(9, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 1; k <= 8; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k), 0.01);
  }
}

TEST(Zipf, SingleElementAlwaysRankOne) {
  const Zipf z{1, 2.0};
  Rng rng{3};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 1u);
}

TEST(WeightedSampler, RejectsEmptyAndNegative) {
  EXPECT_THROW(WeightedSampler({}), std::invalid_argument);
  EXPECT_THROW(WeightedSampler({1.0, -0.5}), std::invalid_argument);
}

TEST(WeightedSampler, NormalizesProbabilities) {
  const WeightedSampler w{{1.0, 3.0}};
  EXPECT_NEAR(w.probability(0), 0.25, 1e-12);
  EXPECT_NEAR(w.probability(1), 0.75, 1e-12);
}

TEST(WeightedSampler, ZeroTotalFallsBackToUniform) {
  const WeightedSampler w{{0.0, 0.0, 0.0}};
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(w.probability(i), 1.0 / 3.0, 1e-12);
  }
}

TEST(WeightedSampler, EmpiricalFrequencies) {
  const WeightedSampler w{{1.0, 2.0, 7.0}};
  Rng rng{5};
  std::vector<int> counts(3, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[w.sample(rng)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.7, 0.01);
}

TEST(WeightedSampler, ZeroWeightNeverSampled) {
  const WeightedSampler w{{0.0, 1.0}};
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) EXPECT_EQ(w.sample(rng), 1u);
}

TEST(WeightedSampler, SingleEntry) {
  const WeightedSampler w{{5.0}};
  Rng rng{9};
  EXPECT_EQ(w.sample(rng), 0u);
  EXPECT_EQ(w.size(), 1u);
}

/// Property sweep: alias tables stay exact for many weight shapes.
class WeightedSamplerSweep : public ::testing::TestWithParam<int> {};

TEST_P(WeightedSamplerSweep, FrequenciesMatchWeights) {
  Rng setup{static_cast<std::uint64_t>(GetParam())};
  const std::size_t n_weights = 2 + setup.index(10);
  std::vector<double> weights(n_weights);
  for (auto& w : weights) w = setup.uniform(0.1, 10.0);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);

  const WeightedSampler sampler{weights};
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 1000};
  std::vector<int> counts(n_weights, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (std::size_t i = 0; i < n_weights; ++i) {
    EXPECT_NEAR(counts[i] / double(n), weights[i] / total, 0.02)
        << "weight index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedSamplerSweep,
                         ::testing::Range(1, 11));

}  // namespace
}  // namespace recwild::stats
