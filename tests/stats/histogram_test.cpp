#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace recwild::stats {
namespace {

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinBoundaries) {
  Histogram h{0.0, 10.0, 5};
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_THROW(h.bin_lo(5), std::out_of_range);
}

TEST(Histogram, AddLandsInCorrectBin) {
  Histogram h{0.0, 10.0, 5};
  h.add(0.5);
  h.add(9.9);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h{0.0, 10.0, 5};
  h.add(-100.0);
  h.add(+100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h{0.0, 1.0, 2};
  h.add(0.1, 10);
  EXPECT_EQ(h.count(0), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, CdfMonotone) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  double prev = -1;
  for (double x = 0; x <= 10; x += 1.0) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
}

TEST(Histogram, CdfEmptyIsZero) {
  Histogram h{0.0, 1.0, 4};
  EXPECT_DOUBLE_EQ(h.cdf(0.5), 0.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h{0.0, 2.0, 2};
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_NE(out.find("#####"), std::string::npos);
}

}  // namespace
}  // namespace recwild::stats
