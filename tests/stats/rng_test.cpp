#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace recwild::stats {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, CloseSeedsStillDecorrelated) {
  // SplitMix64 seeding should avalanche adjacent seeds.
  Rng a{1000};
  Rng b{1001};
  const std::uint64_t xa = a.next();
  const std::uint64_t xb = b.next();
  EXPECT_NE(xa, xb);
  // Hamming distance should be substantial.
  const int bits = std::popcount(xa ^ xb);
  EXPECT_GT(bits, 10);
}

TEST(Rng, ForkIsDeterministic) {
  const Rng parent{7};
  Rng c1 = parent.fork("child");
  Rng c2 = parent.fork("child");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1.next(), c2.next());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a{7};
  Rng b{7};
  (void)a.fork("x");
  (void)a.fork("y");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DistinctTagsGiveDistinctStreams) {
  const Rng parent{7};
  Rng c1 = parent.fork("alpha");
  Rng c2 = parent.fork("beta");
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, IndexedForkMatchesTwoStepFork) {
  const Rng parent{7};
  Rng direct = parent.fork("stream", 42);
  Rng two_step = parent.fork("stream").fork(std::uint64_t{42});
  for (int i = 0; i < 20; ++i) EXPECT_EQ(direct.next(), two_step.next());
}

TEST(Rng, IndexedForkSeparatesIndices) {
  const Rng parent{7};
  Rng c1 = parent.fork("stream", 0);
  Rng c2 = parent.fork("stream", 1);
  EXPECT_NE(c1.next(), c2.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{3};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng{5};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng{9};
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-5.0, 11.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 11.0);
  }
}

TEST(Rng, IndexStaysInRange) {
  Rng rng{11};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.index(7), 7u);
  }
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng{13};
  std::set<std::size_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IndexIsRoughlyUniform) {
  Rng rng{17};
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.index(10)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{19};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng{23};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequencyTracksP) {
  Rng rng{29};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng{31};
  double sum = 0;
  double sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalShifted) {
  Rng rng{37};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng{41};
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(5.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng{43};
  std::vector<double> xs;
  const int n = 50'001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(2.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::exp(2.0), 0.2);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng{47};
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng{53};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng{59};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(copy);
  EXPECT_NE(copy, v);
}

TEST(HashString, StableAndDistinct) {
  EXPECT_EQ(hash_string("abc"), hash_string("abc"));
  EXPECT_NE(hash_string("abc"), hash_string("abd"));
  EXPECT_NE(hash_string(""), hash_string("a"));
}

TEST(Splitmix, ProducesDistinctValues) {
  std::uint64_t state = 0;
  const auto a = splitmix64_next(state);
  const auto b = splitmix64_next(state);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace recwild::stats
