#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace recwild::stats {
namespace {

TEST(Quantile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 7.0);
}

TEST(Quantile, MedianOfOddCount) {
  const std::vector<double> v{5, 1, 3};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
}

TEST(Quantile, MedianOfEvenCountInterpolates) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(median(v), 2.5);
}

TEST(Quantile, ExtremesAreMinMax) {
  const std::vector<double> v{9, 2, 7, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 3.0);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, SortedVariantMatchesUnsorted) {
  std::vector<double> v{4, 1, 9, 2, 8, 3};
  const double q = quantile(v, 0.6);
  std::sort(v.begin(), v.end());
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.6), q);
}

TEST(BoxStats, EmptyGivesNullopt) {
  EXPECT_FALSE(box_stats({}).has_value());
}

TEST(BoxStats, OrderedPercentiles) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(i);
  const auto b = box_stats(v);
  ASSERT_TRUE(b.has_value());
  EXPECT_NEAR(b->p10, 10, 1e-9);
  EXPECT_NEAR(b->p25, 25, 1e-9);
  EXPECT_NEAR(b->p50, 50, 1e-9);
  EXPECT_NEAR(b->p75, 75, 1e-9);
  EXPECT_NEAR(b->p90, 90, 1e-9);
  EXPECT_EQ(b->n, 101u);
}

TEST(Online, EmptyDefaults) {
  Online o;
  EXPECT_EQ(o.count(), 0u);
  EXPECT_DOUBLE_EQ(o.mean(), 0.0);
  EXPECT_DOUBLE_EQ(o.variance(), 0.0);
}

TEST(Online, MeanAndVariance) {
  Online o;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) o.add(x);
  EXPECT_DOUBLE_EQ(o.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(o.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(o.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Online, TracksMinMax) {
  Online o;
  o.add(5);
  o.add(-2);
  o.add(9);
  EXPECT_DOUBLE_EQ(o.min(), -2);
  EXPECT_DOUBLE_EQ(o.max(), 9);
}

TEST(Online, SingleValueHasZeroVariance) {
  Online o;
  o.add(42);
  EXPECT_DOUBLE_EQ(o.variance(), 0.0);
}

TEST(Sample, MedianAfterIncrementalAdds) {
  Sample s;
  s.add(3);
  EXPECT_DOUBLE_EQ(s.median(), 3);
  s.add(1);
  EXPECT_DOUBLE_EQ(s.median(), 2);
  s.add(5);
  EXPECT_DOUBLE_EQ(s.median(), 3);
}

TEST(Sample, MeanAndBox) {
  Sample s;
  for (int i = 1; i <= 4; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  const auto b = s.box();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->n, 4u);
  EXPECT_DOUBLE_EQ(b->p50, 2.5);
}

TEST(Sample, EmptyBehaviour) {
  Sample s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(std::isnan(s.mean()));
  EXPECT_FALSE(s.box().has_value());
}

TEST(KsDistance, IdenticalSamplesAreZero) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ks_distance(v, v), 0.0);
}

TEST(KsDistance, DisjointSamplesAreOne) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{10, 11, 12};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(KsDistance, EmptySampleIsOne) {
  const std::vector<double> v{1.0};
  EXPECT_DOUBLE_EQ(ks_distance({}, v), 1.0);
  EXPECT_DOUBLE_EQ(ks_distance(v, {}), 1.0);
}

TEST(KsDistance, SymmetricAndBounded) {
  const std::vector<double> a{1, 3, 5, 7, 9};
  const std::vector<double> b{2, 3, 4, 8};
  const double ab = ks_distance(a, b);
  EXPECT_DOUBLE_EQ(ab, ks_distance(b, a));
  EXPECT_GE(ab, 0.0);
  EXPECT_LE(ab, 1.0);
}

TEST(KsDistance, KnownValue) {
  // F_a jumps at 1,2; F_b jumps at 2,3. At x in [1,2): F_a=0.5, F_b=0.
  const std::vector<double> a{1, 2};
  const std::vector<double> b{2, 3};
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.5);
}

TEST(Share, Basics) {
  EXPECT_DOUBLE_EQ(share(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(share(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(share(2, 2), 1.0);
}

}  // namespace
}  // namespace recwild::stats
