#include "dnscore/name.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace recwild::dns {
namespace {

TEST(Name, RootParsesAndPrints) {
  const Name root = Name::parse(".");
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.label_count(), 0u);
  EXPECT_EQ(root.to_string(), ".");
  EXPECT_EQ(root.wire_length(), 1u);
}

TEST(Name, DefaultConstructedIsRoot) {
  EXPECT_TRUE(Name{}.is_root());
}

TEST(Name, ParsesRelativeAndAbsoluteForms) {
  const Name a = Name::parse("www.example.nl");
  const Name b = Name::parse("www.example.nl.");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.label_count(), 3u);
  EXPECT_EQ(a.label(0), "www");
  EXPECT_EQ(a.label(2), "nl");
}

TEST(Name, ToStringAppendsTrailingDot) {
  EXPECT_EQ(Name::parse("example.nl").to_string(), "example.nl.");
}

TEST(Name, RejectsEmptyAndMalformed) {
  EXPECT_THROW(Name::parse(""), std::invalid_argument);
  EXPECT_THROW(Name::parse("a..b"), std::invalid_argument);
  EXPECT_THROW(Name::parse(".a"), std::invalid_argument);
  EXPECT_THROW(Name::parse("a\\"), std::invalid_argument);
}

TEST(Name, EscapedDotStaysInLabel) {
  const Name n = Name::parse("a\\.b.nl");
  EXPECT_EQ(n.label_count(), 2u);
  EXPECT_EQ(n.label(0), "a.b");
  EXPECT_EQ(n.to_string(), "a\\.b.nl.");
}

TEST(Name, RoundTripsThroughToString) {
  for (const char* text :
       {"example.nl.", "a.b.c.d.e.", "xn--caf-dma.fr.", "a\\.b.nl."}) {
    const Name n = Name::parse(text);
    EXPECT_EQ(Name::parse(n.to_string()), n) << text;
  }
}

TEST(Name, LabelLengthLimitEnforced) {
  const std::string max_label(63, 'a');
  EXPECT_NO_THROW(Name::parse(max_label + ".nl"));
  const std::string too_long(64, 'a');
  EXPECT_THROW(Name::parse(too_long + ".nl"), std::invalid_argument);
}

TEST(Name, TotalLengthLimitEnforced) {
  // Four 63-byte labels: 4*64 + 1 = 257 > 255.
  const std::string l(63, 'a');
  EXPECT_THROW(Name::parse(l + "." + l + "." + l + "." + l),
               std::invalid_argument);
  // Three long labels + short one stays within 255.
  EXPECT_NO_THROW(Name::parse(l + "." + l + "." + l + ".x"));
}

TEST(Name, WireLengthCountsLabelBytes) {
  EXPECT_EQ(Name::parse("ab.nl").wire_length(), 1 + 2 + 1 + 2 + 1u);
}

TEST(Name, ComparisonIsCaseInsensitive) {
  EXPECT_EQ(Name::parse("WWW.Example.NL"), Name::parse("www.example.nl"));
  EXPECT_EQ(Name::parse("WWW.Example.NL").hash(),
            Name::parse("www.example.nl").hash());
}

TEST(Name, CanonicalOrderIsRightToLeft) {
  // example.com < example.nl (com < nl at the rightmost label).
  EXPECT_LT(Name::parse("example.com"), Name::parse("example.nl"));
  // Parent sorts before child.
  EXPECT_LT(Name::parse("nl"), Name::parse("example.nl"));
  // Root sorts first.
  EXPECT_LT(Name{}, Name::parse("nl"));
}

TEST(Name, CompareIsAntisymmetric) {
  const Name a = Name::parse("a.nl");
  const Name b = Name::parse("b.nl");
  EXPECT_EQ(a.compare(b), -b.compare(a));
  EXPECT_EQ(a.compare(a), 0);
}

TEST(Name, SubdomainChecks) {
  const Name zone = Name::parse("example.nl");
  EXPECT_TRUE(Name::parse("www.example.nl").is_subdomain_of(zone));
  EXPECT_TRUE(zone.is_subdomain_of(zone));
  EXPECT_TRUE(zone.is_subdomain_of(Name{}));  // everything under root
  EXPECT_FALSE(Name::parse("example.com").is_subdomain_of(zone));
  EXPECT_FALSE(Name::parse("nl").is_subdomain_of(zone));
  // Not fooled by string suffixes: "badexample.nl" is not under
  // "example.nl".
  EXPECT_FALSE(Name::parse("badexample.nl").is_subdomain_of(zone));
}

TEST(Name, SubdomainIsCaseInsensitive) {
  EXPECT_TRUE(Name::parse("WWW.EXAMPLE.NL")
                  .is_subdomain_of(Name::parse("example.nl")));
}

TEST(Name, ParentWalksUp) {
  const Name n = Name::parse("a.b.c");
  EXPECT_EQ(n.parent(), Name::parse("b.c"));
  EXPECT_EQ(n.parent().parent(), Name::parse("c"));
  EXPECT_TRUE(n.parent().parent().parent().is_root());
  EXPECT_TRUE(Name{}.parent().is_root());
}

TEST(Name, PrefixedAddsLeftmostLabel) {
  EXPECT_EQ(Name::parse("example.nl").prefixed("www"),
            Name::parse("www.example.nl"));
  EXPECT_EQ(Name{}.prefixed("nl"), Name::parse("nl"));
}

TEST(Name, PrefixedValidatesLimits) {
  EXPECT_THROW(Name::parse("nl").prefixed(std::string(64, 'a')),
               std::invalid_argument);
}

TEST(Name, ConcatJoinsNames) {
  EXPECT_EQ(Name::parse("www").concat(Name::parse("example.nl")),
            Name::parse("www.example.nl"));
  EXPECT_EQ(Name::parse("www.example.nl").concat(Name{}),
            Name::parse("www.example.nl"));
}

TEST(Name, FromLabelsValidates) {
  EXPECT_THROW(Name::from_labels({""}), std::invalid_argument);
  EXPECT_NO_THROW(Name::from_labels({"a", "b"}));
}

TEST(Name, HashDistinguishesNames) {
  EXPECT_NE(Name::parse("a.nl").hash(), Name::parse("b.nl").hash());
  EXPECT_NE(Name::parse("ab.nl").hash(), Name::parse("a.bnl").hash());
}

TEST(Name, MovedFromNameDropsCachedHash) {
  // Regression: moving out of a Name with a populated hash cache must not
  // leave the stale cache behind — a reused moved-from Name (valid but
  // unspecified labels) has to hash consistently with its current labels.
  Name a = Name::parse("example.nl");
  (void)a.hash();  // populate the cache
  Name b{std::move(a)};
  const Name fresh_a =
      Name::from_labels({a.labels().begin(), a.labels().end()});
  EXPECT_EQ(a.hash(), fresh_a.hash());

  (void)b.hash();
  Name c;
  c = std::move(b);
  const Name fresh_b =
      Name::from_labels({b.labels().begin(), b.labels().end()});
  EXPECT_EQ(b.hash(), fresh_b.hash());
  EXPECT_EQ(c, Name::parse("example.nl"));
}

/// Property sweep: parse/print round-trip over generated names.
class NameRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(NameRoundTrip, ParsePrintParse) {
  stats::Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<std::string> labels;
  const std::size_t n = 1 + rng.index(5);
  for (std::size_t i = 0; i < n; ++i) {
    std::string label;
    const std::size_t len = 1 + rng.index(12);
    for (std::size_t j = 0; j < len; ++j) {
      static constexpr char alphabet[] =
          "abcdefghijklmnopqrstuvwxyzABC0123456789-_.";
      label.push_back(
          alphabet[rng.index(sizeof(alphabet) - 1)]);
    }
    labels.push_back(std::move(label));
  }
  const Name n1 = Name::from_labels(labels);
  const Name n2 = Name::parse(n1.to_string());
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(n1.compare(n2), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NameRoundTrip, ::testing::Range(1, 21));

}  // namespace
}  // namespace recwild::dns
