// Golden wire-format fixtures: byte-exact RFC 1035 messages assembled by
// hand (tests/dnscore/golden/generate_fixtures.py), independent of this
// repo's encoder. They pin the codec to the wire protocol itself — a codec
// bug cannot regenerate itself into these files.
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dnscore/codec.hpp"
#include "dnscore/message.hpp"
#include "dnscore/wire.hpp"

namespace recwild::dns {
namespace {

std::vector<std::uint8_t> load_fixture(const std::string& name) {
  const std::string path = std::string{RECWILD_GOLDEN_DIR} + "/" + name;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << "missing golden fixture: " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(GoldenWire, CompressedNsReferralDecodes) {
  const auto wire = load_fixture("ns_referral_compressed.bin");
  ASSERT_EQ(wire.size(), 100u);
  const Message m = decode_message(wire);

  EXPECT_EQ(m.header.id, 0x1234);
  EXPECT_TRUE(m.header.qr);
  EXPECT_FALSE(m.header.aa);  // referral: parent is not authoritative
  ASSERT_EQ(m.questions.size(), 1u);
  EXPECT_EQ(m.question().qname, Name::parse("www.example.nl"));
  EXPECT_EQ(m.question().qtype, RRType::A);

  EXPECT_TRUE(m.answers.empty());
  ASSERT_EQ(m.authorities.size(), 2u);
  const Name zone = Name::parse("example.nl");
  EXPECT_EQ(m.authorities[0].name, zone);
  EXPECT_EQ(m.authorities[1].name, zone);
  EXPECT_EQ(std::get<NsRdata>(m.authorities[0].rdata).nsdname,
            Name::parse("ns1.example.nl"));
  EXPECT_EQ(std::get<NsRdata>(m.authorities[1].rdata).nsdname,
            Name::parse("ns2.example.nl"));

  ASSERT_EQ(m.additionals.size(), 2u);
  EXPECT_EQ(m.additionals[0].name, Name::parse("ns1.example.nl"));
  EXPECT_EQ(std::get<ARdata>(m.additionals[0].rdata).address,
            net::IpAddress::from_octets(10, 0, 0, 1));
  EXPECT_EQ(m.additionals[1].name, Name::parse("ns2.example.nl"));
  EXPECT_EQ(std::get<ARdata>(m.additionals[1].rdata).address,
            net::IpAddress::from_octets(10, 0, 0, 2));
}

TEST(GoldenWire, CompressedNsReferralReencodesByteIdentical) {
  // The fixture uses textbook first-occurrence compression — exactly the
  // scheme the single-pass encoder implements. Re-encoding the decoded
  // message must reproduce the hand-assembled bytes bit for bit.
  const auto wire = load_fixture("ns_referral_compressed.bin");
  const Message m = decode_message(wire);
  const net::WireBuffer reencoded = encode_message(m);
  ASSERT_EQ(reencoded.size(), wire.size());
  EXPECT_TRUE(reencoded == wire);
}

TEST(GoldenWire, TruncatedUdpAnswer) {
  const auto wire = load_fixture("truncated_udp_answer.bin");
  const Message m = decode_message(wire);

  EXPECT_EQ(m.header.id, 0xBEEF);
  EXPECT_TRUE(m.header.qr);
  EXPECT_TRUE(m.header.tc);  // the TCP-retry trigger
  EXPECT_TRUE(m.header.rd);
  EXPECT_TRUE(m.header.ra);
  ASSERT_EQ(m.questions.size(), 1u);
  EXPECT_EQ(m.question().qname, Name::parse("big.example.nl"));
  EXPECT_EQ(m.question().qtype, RRType::TXT);
  EXPECT_TRUE(m.answers.empty());  // truncation elides the answer section
}

TEST(GoldenWire, NotifyMessage) {
  const auto wire = load_fixture("notify.bin");
  const Message m = decode_message(wire);

  EXPECT_EQ(m.header.id, 0x7A11);
  EXPECT_FALSE(m.header.qr);
  EXPECT_EQ(m.header.opcode, Opcode::Notify);
  EXPECT_TRUE(m.header.aa);
  ASSERT_EQ(m.questions.size(), 1u);
  EXPECT_EQ(m.question().qname, Name::parse("example.nl"));
  EXPECT_EQ(m.question().qtype, RRType::SOA);
}

TEST(GoldenWire, PointerLoopRejected) {
  // The question name is a compression pointer to itself. The decoder must
  // fail cleanly — no hang, no overread — like NSD rejecting garbage.
  const auto wire = load_fixture("pointer_loop.bin");
  EXPECT_THROW((void)decode_message(wire), WireError);
}

}  // namespace
}  // namespace recwild::dns
