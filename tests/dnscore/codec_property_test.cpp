// Property wall around the message codec: seeded random messages covering
// every RR type in rdata.hpp, EDNS, TC, mixed-case names and deep
// compression must survive encode -> decode -> encode byte-identically.
//
// The first encode is the canonical wire form; the decoder may normalize
// label case behind compression pointers (a pointer reuses the first
// occurrence's spelling), so message-level equality is NOT the property —
// wire-level fixpoint is: whatever decode produced must re-encode to the
// exact same bytes. Random single-byte corruptions must either throw
// WireError or decode to something that still re-encodes deterministically
// (never crash, never read out of bounds — the ASan/UBSan CI jobs run this
// file too).
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dnscore/codec.hpp"

namespace recwild::dns {
namespace {

using Bytes = std::vector<std::uint8_t>;

Bytes to_bytes(std::span<const std::uint8_t> s) {
  return Bytes{s.begin(), s.end()};
}

class Gen {
 public:
  explicit Gen(std::uint64_t seed) : rng_(seed) {}

  std::uint32_t u32() { return static_cast<std::uint32_t>(rng_()); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(rng_()); }
  std::uint8_t u8() { return static_cast<std::uint8_t>(rng_()); }
  std::size_t below(std::size_t n) { return rng_() % n; }
  bool chance(double p) {
    return std::uniform_real_distribution<>{0.0, 1.0}(rng_) < p;
  }

  /// A label of 1..12 chars, mixed case so compression must match
  /// case-insensitively.
  std::string label() {
    static const char* kChars =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
    const std::size_t len = 1 + below(12);
    std::string out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) out.push_back(kChars[below(64)]);
    return out;
  }

  /// Random name drawn from a handful of shared suffix families, so the
  /// encoder's compression table gets real hits across sections.
  Name name() {
    static const std::vector<std::vector<std::string>> kSuffixes = {
        {"example", "nl"},
        {"Example", "NL"},
        {"ns", "ourtestdomain", "nl"},
        {"a", "very", "deep", "suffix", "chain", "test"},
        {},  // the root
    };
    std::vector<std::string> labels = kSuffixes[below(kSuffixes.size())];
    const std::size_t extra = below(3);
    for (std::size_t i = 0; i < extra; ++i) {
      std::string l = label();
      // Stay inside the 255-octet wire limit.
      std::size_t total = 1;
      for (const auto& s : labels) total += 1 + s.size();
      if (total + 1 + l.size() > 250) break;
      labels.insert(labels.begin(), std::move(l));
    }
    return Name::from_labels(std::move(labels));
  }

  Rdata rdata(int kind) {
    switch (kind) {
      case 0:
        return ARdata{net::IpAddress{u32()}};
      case 1: {
        AaaaRdata v;
        for (auto& b : v.address) b = u8();
        return v;
      }
      case 2:
        return NsRdata{name()};
      case 3:
        return CnameRdata{name()};
      case 4:
        return PtrRdata{name()};
      case 5: {
        SoaRdata v;
        v.mname = name();
        v.rname = name();
        v.serial = u32();
        v.refresh = u32();
        v.retry = u32();
        v.expire = u32();
        v.minimum = u32();
        return v;
      }
      case 6:
        return MxRdata{u16(), name()};
      case 7: {
        TxtRdata v;
        const std::size_t n = below(3);  // 0..2 strings (0 = empty RDATA)
        for (std::size_t i = 0; i < n; ++i) {
          std::string s;
          const std::size_t len = below(40);
          for (std::size_t j = 0; j < len; ++j) {
            s.push_back(static_cast<char>(u8()));
          }
          v.strings.push_back(std::move(s));
        }
        return v;
      }
      case 8:
        return SrvRdata{u16(), u16(), u16(), name()};
      case 9: {
        CaaRdata v;
        v.flags = u8();
        v.tag = chance(0.5) ? "issue" : "iodef";
        const std::size_t len = below(30);
        for (std::size_t j = 0; j < len; ++j) {
          v.value.push_back(static_cast<char>(u8()));
        }
        return v;
      }
      default: {
        RawRdata v;
        v.type = static_cast<std::uint16_t>(200 + below(800));  // unknown
        const std::size_t len = below(20);
        for (std::size_t j = 0; j < len; ++j) v.data.push_back(u8());
        return v;
      }
    }
  }

  ResourceRecord record() {
    ResourceRecord rr;
    rr.name = name();
    rr.rrclass = chance(0.95) ? RRClass::IN : RRClass::CH;
    rr.ttl = u32();
    rr.rdata = rdata(static_cast<int>(below(11)));
    return rr;
  }

  Message message() {
    Message m;
    m.header.id = u16();
    m.header.qr = chance(0.5);
    m.header.opcode = static_cast<Opcode>(below(16));
    m.header.aa = chance(0.5);
    m.header.tc = chance(0.2);
    m.header.rd = chance(0.5);
    m.header.ra = chance(0.5);
    m.header.rcode = static_cast<Rcode>(below(16));
    const std::size_t qd = below(2) + (chance(0.9) ? 1 : 0);
    for (std::size_t i = 0; i < qd; ++i) {
      m.questions.push_back(
          Question{name(), static_cast<RRType>(1 + below(16)), RRClass::IN});
    }
    const std::size_t an = below(4);
    for (std::size_t i = 0; i < an; ++i) m.answers.push_back(record());
    const std::size_t ns = below(3);
    for (std::size_t i = 0; i < ns; ++i) m.authorities.push_back(record());
    const std::size_t ar = below(3);
    for (std::size_t i = 0; i < ar; ++i) m.additionals.push_back(record());
    if (chance(0.5)) {
      EdnsInfo edns;
      edns.udp_payload_size = static_cast<std::uint16_t>(512 + below(4096));
      edns.extended_rcode = u8();
      edns.version = chance(0.9) ? 0 : u8();
      edns.dnssec_ok = chance(0.3);
      if (chance(0.3)) {
        OptRdata::Option opt;
        opt.code = u16();
        const std::size_t len = below(16);
        for (std::size_t j = 0; j < len; ++j) opt.data.push_back(u8());
        edns.options.options.push_back(std::move(opt));
      }
      m.edns = edns;
    }
    return m;
  }

 private:
  std::mt19937_64 rng_;
};

TEST(CodecProperty, EncodeDecodeEncodeIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Gen gen{seed};
    for (int i = 0; i < 64; ++i) {
      const Message m = gen.message();
      const Bytes first = to_bytes(encode_message(m));
      Message decoded;
      ASSERT_NO_THROW(decoded = decode_message(first))
          << "seed " << seed << " iteration " << i;
      const Bytes second = to_bytes(encode_message(decoded));
      ASSERT_EQ(first, second) << "seed " << seed << " iteration " << i;
    }
  }
}

TEST(CodecProperty, DecodedMessagePreservesStructure) {
  Gen gen{99};
  for (int i = 0; i < 64; ++i) {
    const Message m = gen.message();
    const Message d = decode_message(encode_message(m));
    EXPECT_EQ(d.header, m.header);
    ASSERT_EQ(d.questions.size(), m.questions.size());
    EXPECT_EQ(d.answers.size(), m.answers.size());
    EXPECT_EQ(d.authorities.size(), m.authorities.size());
    EXPECT_EQ(d.additionals.size(), m.additionals.size());
    EXPECT_EQ(d.edns.has_value(), m.edns.has_value());
    for (std::size_t q = 0; q < m.questions.size(); ++q) {
      EXPECT_TRUE(d.questions[q].qname == m.questions[q].qname);
      EXPECT_EQ(d.questions[q].qtype, m.questions[q].qtype);
    }
  }
}

// Compression pointers must work at every offset class: targets below 255,
// above 255, and suffixes first written beyond the 0x3fff pointer range
// (which the writer must then never point at).
TEST(CodecProperty, LargeMessagesCrossThePointerRangeBoundary) {
  Gen gen{7};
  Message m;
  m.header.id = 4242;
  m.header.qr = true;
  m.questions.push_back(
      Question{Name::parse("start.example.nl"), RRType::TXT, RRClass::IN});
  // ~20 KiB of TXT records interleaved with compressible owners, so some
  // owner suffixes are first seen before offset 0x3fff and some after.
  for (int i = 0; i < 90; ++i) {
    ResourceRecord rr;
    rr.name = Name::parse("host" + std::to_string(i % 7) + ".example.nl");
    rr.ttl = 60;
    TxtRdata txt;
    txt.strings.push_back(std::string(200 + gen.below(55), 'x'));
    rr.rdata = txt;
    m.answers.push_back(rr);
    if (i % 9 == 0) {
      m.answers.push_back(ResourceRecord{
          Name::parse("late" + std::to_string(i) + ".suffix.family" +
                      std::to_string(i / 9) + ".example.nl"),
          RRClass::IN, 60, NsRdata{Name::parse("ns.example.nl")}});
    }
  }
  const Bytes first = to_bytes(encode_message(m));
  ASSERT_GT(first.size(), 0x3fffu);
  const Message decoded = decode_message(first);
  const Bytes second = to_bytes(encode_message(decoded));
  EXPECT_EQ(first, second);
}

TEST(CodecProperty, CorruptedWireNeverCrashesTheDecoder) {
  Gen gen{1234};
  int throws = 0;
  int survived = 0;
  for (int i = 0; i < 128; ++i) {
    const Message m = gen.message();
    Bytes wire = to_bytes(encode_message(m));
    if (wire.empty()) continue;
    // Flip one byte (or truncate) and decode. Any outcome is fine except a
    // crash or an out-of-bounds read.
    Bytes mutated = wire;
    if (gen.chance(0.2)) {
      mutated.resize(gen.below(mutated.size()));
    } else {
      mutated[gen.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << gen.below(8));
    }
    try {
      const Message d = decode_message(mutated);
      // Whatever decoded must still be encodable deterministically.
      const Bytes a = to_bytes(encode_message(d));
      const Bytes b = to_bytes(encode_message(d));
      EXPECT_EQ(a, b);
      ++survived;
    } catch (const WireError&) {
      ++throws;
    } catch (const std::invalid_argument&) {
      ++throws;  // Name limits rejected during decode
    }
  }
  // Sanity: the corpus exercised both outcomes.
  EXPECT_GT(throws, 0);
  EXPECT_GT(survived, 0);
}

}  // namespace
}  // namespace recwild::dns
