// Hostile-input hardening for decode_message: a datagram from the network
// is attacker-controlled from the first byte, and the decoder's only
// acceptable failure mode is WireError. These tests drive it with every
// truncation and thousands of seeded mutations of the golden fixtures —
// the closest thing to a fuzzer that still runs deterministically in CI.
#include <cstdint>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dnscore/codec.hpp"
#include "dnscore/message.hpp"
#include "dnscore/wire.hpp"

namespace recwild::dns {
namespace {

const char* const kFixtures[] = {
    "ns_referral_compressed.bin",
    "truncated_udp_answer.bin",
    "notify.bin",
    "pointer_loop.bin",
};

std::vector<std::uint8_t> load_fixture(const std::string& name) {
  const std::string path = std::string{RECWILD_GOLDEN_DIR} + "/" + name;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << "missing golden fixture: " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// decode_message must either produce a Message or throw WireError; any
/// other exception (or a crash/sanitizer report) fails the test.
void must_decode_or_reject(std::span<const std::uint8_t> wire) {
  try {
    const Message m = decode_message(wire);
    (void)m;
  } catch (const WireError&) {
    // rejected cleanly
  }
}

TEST(CodecFuzz, EveryPrefixOfEveryFixtureDecodesOrRejects) {
  for (const char* name : kFixtures) {
    const auto wire = load_fixture(name);
    for (std::size_t len = 0; len <= wire.size(); ++len) {
      must_decode_or_reject(std::span{wire.data(), len});
    }
  }
}

TEST(CodecFuzz, SeededMutationsOfFixturesDecodeOrReject) {
  std::mt19937 rng{0xC0DEC};
  for (const char* name : kFixtures) {
    const auto original = load_fixture(name);
    if (original.empty()) continue;
    std::uniform_int_distribution<std::size_t> pos{0, original.size() - 1};
    std::uniform_int_distribution<int> byte{0, 255};
    std::uniform_int_distribution<int> muts{1, 8};
    for (int iter = 0; iter < 2000; ++iter) {
      std::vector<std::uint8_t> wire = original;
      const int n = muts(rng);
      for (int m = 0; m < n; ++m) {
        wire[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
      }
      must_decode_or_reject(wire);
    }
  }
}

TEST(CodecFuzz, MutatedAndTruncatedTogether) {
  // Both corruptions at once: flip bytes, then cut the tail — the shape a
  // fragmented/garbled datagram actually arrives in.
  std::mt19937 rng{0xF00D};
  for (const char* name : kFixtures) {
    const auto original = load_fixture(name);
    if (original.size() < 2) continue;
    std::uniform_int_distribution<std::size_t> pos{0, original.size() - 1};
    std::uniform_int_distribution<int> byte{0, 255};
    for (int iter = 0; iter < 1000; ++iter) {
      std::vector<std::uint8_t> wire = original;
      wire[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
      wire[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
      wire.resize(pos(rng));
      must_decode_or_reject(wire);
    }
  }
}

TEST(CodecFuzz, PureGarbageDecodesOrRejects) {
  std::mt19937 rng{0xBAD};
  std::uniform_int_distribution<std::size_t> len{0, 600};
  std::uniform_int_distribution<int> byte{0, 255};
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<std::uint8_t> wire(len(rng));
    for (auto& b : wire) b = static_cast<std::uint8_t>(byte(rng));
    must_decode_or_reject(wire);
  }
}

TEST(CodecFuzz, RuntAdvertisingMaxCountsRejectsWithoutPreallocating) {
  // 12 octets claiming 65535 records in every section. The bounded
  // reserve() in decode_message must keep this from allocating megabytes
  // before the parse error fires; the vectors never grow past what the
  // remaining zero bytes could hold.
  const std::vector<std::uint8_t> runt{0x00, 0x01, 0x00, 0x00,
                                       0xff, 0xff, 0xff, 0xff,
                                       0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW((void)decode_message(runt), WireError);
}

}  // namespace
}  // namespace recwild::dns
