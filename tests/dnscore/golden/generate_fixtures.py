#!/usr/bin/env python3
"""Hand-assembles the golden DNS wire fixtures in this directory.

Each fixture is a byte-exact RFC 1035 message assembled label by label,
independent of the repo's own encoder, so codec regressions cannot
regenerate themselves into the fixtures. Run from this directory:

    python3 generate_fixtures.py

and commit the resulting .bin files. The loader test
(tests/dnscore/golden_wire_test.cpp) asserts both decoded structure and,
for the compressed referral, byte-identical re-encoding.
"""

import struct
from pathlib import Path

HERE = Path(__file__).resolve().parent


def header(msg_id, flags, qd=0, an=0, ns=0, ar=0):
    return struct.pack(">HHHHHH", msg_id, flags, qd, an, ns, ar)


def labels(*parts):
    out = b""
    for p in parts:
        raw = p.encode()
        out += bytes([len(raw)]) + raw
    return out


def pointer(offset):
    return struct.pack(">H", 0xC000 | offset)


def question(name_bytes, qtype, qclass=1):
    return name_bytes + struct.pack(">HH", qtype, qclass)


def rr(name_bytes, rtype, ttl, rdata, rclass=1):
    return name_bytes + struct.pack(">HHIH", rtype, rclass, ttl, len(rdata)) + rdata


def ns_referral_compressed():
    # A parent-zone referral for www.example.nl: two NS in authority with
    # owner and target names compressed against the question, two glue A
    # records in additional compressed against the NS targets.
    # Offsets: www@12 example@16 nl@24 root@27; qtype/qclass to 32.
    msg = header(0x1234, 0x8000, qd=1, ns=2, ar=2)
    msg += question(labels("www", "example", "nl") + b"\x00", 1)  # A
    assert len(msg) == 32
    # Authority: example.nl NS ns1.example.nl / ns2.example.nl.
    # RR1 at 32; its rdata ("ns1" + ptr) starts at 44.
    msg += rr(pointer(16), 2, 3600, labels("ns1") + pointer(16))
    assert len(msg) == 50
    # RR2 at 50; rdata at 62.
    msg += rr(pointer(16), 2, 3600, labels("ns2") + pointer(16))
    assert len(msg) == 68
    # Glue: ns1.example.nl A 10.0.0.1 (name = ptr to 44), ns2 -> ptr to 62.
    msg += rr(pointer(44), 1, 3600, bytes([10, 0, 0, 1]))
    msg += rr(pointer(62), 1, 3600, bytes([10, 0, 0, 2]))
    return msg


def truncated_udp_answer():
    # A TC=1 UDP response with the answer section elided, as an
    # authoritative server emits when the answer exceeds the UDP limit
    # (the client is expected to retry over TCP). QR|TC|RD|RA.
    msg = header(0xBEEF, 0x8380, qd=1)
    msg += question(labels("big", "example", "nl") + b"\x00", 16)  # TXT
    return msg


def notify():
    # RFC 1996 NOTIFY(SOA) from a primary: opcode 4, AA set, question only.
    msg = header(0x7A11, 0x2400, qd=1)
    msg += question(labels("example", "nl") + b"\x00", 6)  # SOA
    return msg


def pointer_loop():
    # Malformed: the question name is a compression pointer to itself.
    # Decoding must fail cleanly (WireError), never hang or overread.
    msg = header(0xDEAD, 0x8000, qd=1)
    msg += question(pointer(12), 1)
    return msg


FIXTURES = {
    "ns_referral_compressed.bin": ns_referral_compressed,
    "truncated_udp_answer.bin": truncated_udp_answer,
    "notify.bin": notify,
    "pointer_loop.bin": pointer_loop,
}


def main():
    for filename, build in FIXTURES.items():
        data = build()
        (HERE / filename).write_bytes(data)
        print(f"{filename}: {len(data)} bytes")


if __name__ == "__main__":
    main()
