#include "dnscore/wire.hpp"

#include <gtest/gtest.h>

namespace recwild::dns {
namespace {

TEST(WireWriter, IntegersAreBigEndian) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 7u);
  EXPECT_EQ(d[0], 0xab);
  EXPECT_EQ(d[1], 0x12);
  EXPECT_EQ(d[2], 0x34);
  EXPECT_EQ(d[3], 0xde);
  EXPECT_EQ(d[4], 0xad);
  EXPECT_EQ(d[5], 0xbe);
  EXPECT_EQ(d[6], 0xef);
}

TEST(WireReader, IntegersRoundTrip) {
  WireWriter w;
  w.u8(7);
  w.u16(65535);
  w.u32(123456789);
  WireReader r{w.data()};
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 123456789u);
  EXPECT_TRUE(r.at_end());
}

TEST(WireReader, TruncatedThrows) {
  WireWriter w;
  w.u8(1);
  WireReader r{w.data()};
  EXPECT_THROW(r.u16(), WireError);
}

TEST(WireReader, SeekAndOffset) {
  WireWriter w;
  w.u32(0x01020304);
  WireReader r{w.data()};
  r.skip(2);
  EXPECT_EQ(r.offset(), 2u);
  EXPECT_EQ(r.u8(), 3);
  r.seek(0);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_THROW(r.seek(100), WireError);
}

TEST(WireName, SimpleRoundTrip) {
  WireWriter w;
  const Name n = Name::parse("www.example.nl");
  w.name(n);
  // 3www7example2nl0 = 4+8+3+1 = 16 bytes.
  EXPECT_EQ(w.size(), 16u);
  WireReader r{w.data()};
  EXPECT_EQ(r.name(), n);
  EXPECT_TRUE(r.at_end());
}

TEST(WireName, RootIsSingleZeroByte) {
  WireWriter w;
  w.name(Name{});
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.data()[0], 0);
  WireReader r{w.data()};
  EXPECT_TRUE(r.name().is_root());
}

TEST(WireName, CompressionReusesSuffix) {
  WireWriter w;
  w.name(Name::parse("www.example.nl"));
  const std::size_t first = w.size();
  w.name(Name::parse("mail.example.nl"));
  // Second name: 4mail + 2-byte pointer = 7 bytes.
  EXPECT_EQ(w.size() - first, 7u);

  WireReader r{w.data()};
  EXPECT_EQ(r.name(), Name::parse("www.example.nl"));
  EXPECT_EQ(r.name(), Name::parse("mail.example.nl"));
}

TEST(WireName, IdenticalNameBecomesPurePointer) {
  WireWriter w;
  w.name(Name::parse("example.nl"));
  const std::size_t first = w.size();
  w.name(Name::parse("example.nl"));
  EXPECT_EQ(w.size() - first, 2u);  // just a pointer
  WireReader r{w.data()};
  EXPECT_EQ(r.name(), r.name());
}

TEST(WireName, CompressionIsCaseInsensitive) {
  WireWriter w;
  w.name(Name::parse("Example.NL"));
  const std::size_t first = w.size();
  w.name(Name::parse("www.example.nl"));
  EXPECT_EQ(w.size() - first, 4 + 2u);  // len+www + 2-byte ptr
}

TEST(WireName, NoCompressFlagWritesFull) {
  WireWriter w;
  w.name(Name::parse("example.nl"));
  const std::size_t first = w.size();
  w.name(Name::parse("example.nl"), /*compress=*/false);
  EXPECT_EQ(w.size() - first, 12u);  // full encoding again
}

TEST(WireName, ManyLabelNameGrowsTableMidNameSafely) {
  // Regression: a single name with more than 32 labels makes the
  // compression table grow while that name is being written. Offsets for
  // the in-progress name must not be visible to the rehash (they point
  // at bytes that do not exist yet); publication is deferred until the
  // terminator is written.
  std::vector<std::string> labels;
  for (int i = 0; i < 60; ++i) labels.push_back("l" + std::to_string(i));
  const Name big = Name::from_labels(labels);

  WireWriter w;
  w.name(big);
  const std::size_t first = w.size();
  // The whole name was recorded: a repeat is a pure 2-byte pointer.
  w.name(big);
  EXPECT_EQ(w.size() - first, 2u);
  // So is any suffix of it.
  const Name tail = Name::from_labels(
      {labels.begin() + 30, labels.end()});
  const std::size_t second = w.size();
  w.name(tail);
  EXPECT_EQ(w.size() - second, 2u);

  WireReader r{w.data()};
  EXPECT_EQ(r.name(), big);
  EXPECT_EQ(r.name(), big);
  EXPECT_EQ(r.name(), tail);
  EXPECT_TRUE(r.at_end());
}

TEST(WireName, ConsecutiveEqualLabelsCompressCorrectly) {
  // Regression: equal adjacent labels give several suffixes of one name
  // identical leading bytes; a probe-chain collision during the name's own
  // encoding must not match a suffix of the name being written.
  const Name deep = Name::parse("a.a.a.a.a.nl");
  WireWriter w;
  w.name(deep);
  const std::size_t first = w.size();
  w.name(Name::parse("a.a.nl"));
  EXPECT_EQ(w.size() - first, 2u);  // suffix already on the wire: pointer
  WireReader r{w.data()};
  EXPECT_EQ(r.name(), deep);
  EXPECT_EQ(r.name(), Name::parse("a.a.nl"));
}

TEST(WireName, SuffixesPublishedWhenNameEndsInPointer) {
  // A name that terminates in a compression pointer still records its own
  // fresh labels, so later names can point at them.
  WireWriter w;
  w.name(Name::parse("example.nl"));
  w.name(Name::parse("www.example.nl"));  // ends in a pointer
  const std::size_t first = w.size();
  w.name(Name::parse("www.example.nl"));
  EXPECT_EQ(w.size() - first, 2u);  // "www" suffix was published
  WireReader r{w.data()};
  EXPECT_EQ(r.name(), Name::parse("example.nl"));
  EXPECT_EQ(r.name(), Name::parse("www.example.nl"));
  EXPECT_EQ(r.name(), Name::parse("www.example.nl"));
}

TEST(WireName, PointerLoopRejected) {
  // A pointer at offset 0 pointing to itself.
  const std::vector<std::uint8_t> evil{0xc0, 0x00};
  WireReader r{evil};
  EXPECT_THROW(r.name(), WireError);
}

TEST(WireName, MutualPointerLoopRejected) {
  // Offset 0 -> 2, offset 2 -> 0.
  const std::vector<std::uint8_t> evil{0xc0, 0x02, 0xc0, 0x00};
  WireReader r{evil};
  EXPECT_THROW(r.name(), WireError);
}

TEST(WireName, ForwardPointerRejected) {
  // Pointer to a later offset (only backwards references are legal here).
  const std::vector<std::uint8_t> evil{0xc0, 0x05, 0, 0, 0, 1, 'a', 0};
  WireReader r{evil};
  EXPECT_THROW(r.name(), WireError);
}

TEST(WireName, TruncatedLabelRejected) {
  const std::vector<std::uint8_t> evil{5, 'a', 'b'};
  WireReader r{evil};
  EXPECT_THROW(r.name(), WireError);
}

TEST(WireName, MissingTerminatorRejected) {
  const std::vector<std::uint8_t> evil{1, 'a'};
  WireReader r{evil};
  EXPECT_THROW(r.name(), WireError);
}

TEST(WireName, ReservedLabelTypeRejected) {
  const std::vector<std::uint8_t> evil{0x80, 'a', 0};
  WireReader r{evil};
  EXPECT_THROW(r.name(), WireError);
}

TEST(WireName, ReaderPositionAfterPointerIsAfterPointer) {
  WireWriter w;
  w.name(Name::parse("a.nl"));
  w.name(Name::parse("b.a.nl"));
  w.u16(0xbeef);
  WireReader r{w.data()};
  (void)r.name();
  (void)r.name();
  EXPECT_EQ(r.u16(), 0xbeef);
}

TEST(CharString, RoundTrip) {
  WireWriter w;
  w.char_string("hello");
  w.char_string("");
  WireReader r{w.data()};
  EXPECT_EQ(r.char_string(), "hello");
  EXPECT_EQ(r.char_string(), "");
}

TEST(CharString, MaxLengthEnforced) {
  WireWriter w;
  EXPECT_NO_THROW(w.char_string(std::string(255, 'x')));
  EXPECT_THROW(w.char_string(std::string(256, 'x')), WireError);
}

TEST(PatchU16, OverwritesInPlace) {
  WireWriter w;
  w.u16(0);
  w.u8(9);
  w.patch_u16(0, 0x1234);
  WireReader r{w.data()};
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_THROW(w.patch_u16(2, 1), WireError);
}

TEST(WireReader, BytesAndRemaining) {
  WireWriter w;
  w.u32(0xa1b2c3d4);
  WireReader r{w.data()};
  EXPECT_EQ(r.remaining(), 4u);
  const auto b = r.bytes(4);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0xa1);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.bytes(1), WireError);
}

}  // namespace
}  // namespace recwild::dns
