#include "dnscore/record.hpp"

#include <gtest/gtest.h>

namespace recwild::dns {
namespace {

ResourceRecord a_record(const char* name, std::uint32_t ip, Ttl ttl = 60) {
  return ResourceRecord{Name::parse(name), RRClass::IN, ttl,
                        ARdata{net::IpAddress{ip}}};
}

TEST(Record, TypeComesFromRdata) {
  EXPECT_EQ(a_record("x.nl", 1).type(), RRType::A);
  const ResourceRecord txt{Name::parse("x.nl"), RRClass::IN, 5,
                           TxtRdata{{"v"}}};
  EXPECT_EQ(txt.type(), RRType::TXT);
}

TEST(Record, ToStringIsPresentationLine) {
  const auto rr = a_record("www.example.nl", 0x0a000001, 300);
  EXPECT_EQ(rr.to_string(), "www.example.nl. 300 IN A 10.0.0.1");
}

TEST(RRset, ToRecordsExpandsAll) {
  RRset set;
  set.name = Name::parse("x.nl");
  set.type = RRType::A;
  set.ttl = 60;
  set.rdatas = {ARdata{net::IpAddress{1}}, ARdata{net::IpAddress{2}}};
  const auto records = set.to_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].ttl, 60u);
  EXPECT_EQ(records[0].name, set.name);
  EXPECT_NE(records[0].rdata, records[1].rdata);
}

TEST(GroupRRsets, GroupsByNameAndType) {
  const std::vector<ResourceRecord> records{
      a_record("a.nl", 1),
      a_record("a.nl", 2),
      a_record("b.nl", 3),
      {Name::parse("a.nl"), RRClass::IN, 60, TxtRdata{{"t"}}},
  };
  const auto sets = group_rrsets(records);
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0].size(), 2u);  // two A records at a.nl
  EXPECT_EQ(sets[1].size(), 1u);
  EXPECT_EQ(sets[2].type, RRType::TXT);
}

TEST(GroupRRsets, MixedTtlNormalizedToMinimum) {
  const std::vector<ResourceRecord> records{
      a_record("a.nl", 1, 300),
      a_record("a.nl", 2, 100),
  };
  const auto sets = group_rrsets(records);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].ttl, 100u);
}

TEST(GroupRRsets, CaseInsensitiveOwnerMatch) {
  const std::vector<ResourceRecord> records{
      a_record("A.NL", 1),
      a_record("a.nl", 2),
  };
  EXPECT_EQ(group_rrsets(records).size(), 1u);
}

TEST(GroupRRsets, EmptyInput) {
  EXPECT_TRUE(group_rrsets({}).empty());
}

TEST(GroupRRsets, PreservesFirstSeenOrder) {
  const std::vector<ResourceRecord> records{
      a_record("z.nl", 1),
      a_record("a.nl", 2),
  };
  const auto sets = group_rrsets(records);
  EXPECT_EQ(sets[0].name, Name::parse("z.nl"));
  EXPECT_EQ(sets[1].name, Name::parse("a.nl"));
}

}  // namespace
}  // namespace recwild::dns
