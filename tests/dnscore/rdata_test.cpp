#include "dnscore/rdata.hpp"

#include <gtest/gtest.h>

namespace recwild::dns {
namespace {

/// Encodes rdata and decodes it back, checking equality.
Rdata round_trip(const Rdata& in) {
  WireWriter w;
  encode_rdata(w, in);
  WireReader r{w.data()};
  return decode_rdata(r, rdata_type(in), w.size());
}

TEST(Rdata, TypeMapping) {
  EXPECT_EQ(rdata_type(ARdata{}), RRType::A);
  EXPECT_EQ(rdata_type(AaaaRdata{}), RRType::AAAA);
  EXPECT_EQ(rdata_type(NsRdata{}), RRType::NS);
  EXPECT_EQ(rdata_type(CnameRdata{}), RRType::CNAME);
  EXPECT_EQ(rdata_type(SoaRdata{}), RRType::SOA);
  EXPECT_EQ(rdata_type(MxRdata{}), RRType::MX);
  EXPECT_EQ(rdata_type(TxtRdata{}), RRType::TXT);
  EXPECT_EQ(rdata_type(SrvRdata{}), RRType::SRV);
  EXPECT_EQ(rdata_type(OptRdata{}), RRType::OPT);
  EXPECT_EQ(rdata_type(CaaRdata{}), RRType::CAA);
  EXPECT_EQ(rdata_type(PtrRdata{}), RRType::PTR);
  EXPECT_EQ(rdata_type(RawRdata{999, {}}), static_cast<RRType>(999));
}

TEST(Rdata, ARoundTrip) {
  const Rdata in = ARdata{net::IpAddress::from_octets(192, 0, 2, 1)};
  EXPECT_EQ(round_trip(in), in);
}

TEST(Rdata, AWrongLengthRejected) {
  WireWriter w;
  w.u16(5);
  WireReader r{w.data()};
  EXPECT_THROW(decode_rdata(r, RRType::A, 2), WireError);
}

TEST(Rdata, AaaaRoundTrip) {
  AaaaRdata v;
  for (std::size_t i = 0; i < 16; ++i) {
    v.address[i] = static_cast<std::uint8_t>(i * 7);
  }
  EXPECT_EQ(round_trip(Rdata{v}), Rdata{v});
}

TEST(Rdata, NsCnamePtrRoundTrip) {
  EXPECT_EQ(round_trip(NsRdata{Name::parse("ns1.example.nl")}),
            Rdata{NsRdata{Name::parse("ns1.example.nl")}});
  EXPECT_EQ(round_trip(CnameRdata{Name::parse("www.example.nl")}),
            Rdata{CnameRdata{Name::parse("www.example.nl")}});
  EXPECT_EQ(round_trip(PtrRdata{Name::parse("host.example.nl")}),
            Rdata{PtrRdata{Name::parse("host.example.nl")}});
}

TEST(Rdata, SoaRoundTrip) {
  SoaRdata soa;
  soa.mname = Name::parse("ns1.dns.nl");
  soa.rname = Name::parse("hostmaster.dns.nl");
  soa.serial = 2017041201;
  soa.refresh = 14400;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum = 300;
  EXPECT_EQ(round_trip(Rdata{soa}), Rdata{soa});
}

TEST(Rdata, MxRoundTrip) {
  const MxRdata mx{10, Name::parse("mail.example.nl")};
  EXPECT_EQ(round_trip(Rdata{mx}), Rdata{mx});
}

TEST(Rdata, TxtSingleString) {
  const TxtRdata txt{{"FRA"}};
  EXPECT_EQ(round_trip(Rdata{txt}), Rdata{txt});
}

TEST(Rdata, TxtMultipleStrings) {
  const TxtRdata txt{{"first", "second", ""}};
  EXPECT_EQ(round_trip(Rdata{txt}), Rdata{txt});
}

TEST(Rdata, SrvRoundTrip) {
  const SrvRdata srv{1, 2, 5353, Name::parse("svc.example.nl")};
  EXPECT_EQ(round_trip(Rdata{srv}), Rdata{srv});
}

TEST(Rdata, OptOptionsRoundTrip) {
  OptRdata opt;
  opt.options.push_back({10, {1, 2, 3, 4}});  // e.g. COOKIE
  opt.options.push_back({8, {0x00, 0x01, 0x18, 0x00}});  // ECS-ish
  EXPECT_EQ(round_trip(Rdata{opt}), Rdata{opt});
}

TEST(Rdata, CaaRoundTrip) {
  const CaaRdata caa{128, "issue", "letsencrypt.org"};
  EXPECT_EQ(round_trip(Rdata{caa}), Rdata{caa});
}

TEST(Rdata, UnknownTypeRoundTripsRaw) {
  const RawRdata raw{4242, {9, 8, 7}};
  WireWriter w;
  encode_rdata(w, Rdata{raw});
  WireReader r{w.data()};
  const Rdata back = decode_rdata(r, static_cast<RRType>(4242), 3);
  EXPECT_EQ(back, Rdata{raw});
}

TEST(Rdata, LengthMismatchDetected) {
  // NS rdata with trailing junk inside declared rdlength.
  WireWriter w;
  w.name(Name::parse("ns.example.nl"), false);
  w.u8(0xff);
  WireReader r{w.data()};
  EXPECT_THROW(decode_rdata(r, RRType::NS, w.size()), WireError);
}

TEST(Rdata, PresentationFormats) {
  EXPECT_EQ(rdata_to_string(ARdata{net::IpAddress::from_octets(10, 1, 2, 3)}),
            "10.1.2.3");
  EXPECT_EQ(rdata_to_string(MxRdata{5, Name::parse("mx.nl")}), "5 mx.nl.");
  EXPECT_EQ(rdata_to_string(TxtRdata{{"a", "b"}}), "\"a\" \"b\"");
  EXPECT_EQ(rdata_to_string(NsRdata{Name::parse("ns.nl")}), "ns.nl.");
  AaaaRdata v6;
  v6.address[15] = 1;
  EXPECT_EQ(rdata_to_string(v6), "0:0:0:0:0:0:0:1");
}

}  // namespace
}  // namespace recwild::dns
