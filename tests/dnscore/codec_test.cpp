#include "dnscore/codec.hpp"

#include <gtest/gtest.h>

#include "stats/rng.hpp"

namespace recwild::dns {
namespace {

Message sample_query() {
  Message q = Message::make_query(0x1234, Name::parse("www.example.nl"),
                                  RRType::TXT);
  q.header.rd = true;
  return q;
}

TEST(Codec, QueryRoundTrip) {
  const Message q = sample_query();
  const Message back = decode_message(encode_message(q));
  EXPECT_EQ(back.header, q.header);
  ASSERT_EQ(back.questions.size(), 1u);
  EXPECT_EQ(back.questions[0], q.questions[0]);
  EXPECT_TRUE(back.answers.empty());
  EXPECT_FALSE(back.edns.has_value());
}

TEST(Codec, ResponseWithAllSectionsRoundTrips) {
  Message resp = Message::make_response(sample_query());
  resp.header.aa = true;
  resp.header.ra = true;
  resp.answers.push_back(ResourceRecord{
      Name::parse("www.example.nl"), RRClass::IN, 300,
      CnameRdata{Name::parse("web.example.nl")}});
  resp.answers.push_back(ResourceRecord{
      Name::parse("web.example.nl"), RRClass::IN, 60,
      ARdata{net::IpAddress::from_octets(192, 0, 2, 7)}});
  resp.authorities.push_back(ResourceRecord{
      Name::parse("example.nl"), RRClass::IN, 3600,
      NsRdata{Name::parse("ns1.example.nl")}});
  resp.additionals.push_back(ResourceRecord{
      Name::parse("ns1.example.nl"), RRClass::IN, 3600,
      ARdata{net::IpAddress::from_octets(192, 0, 2, 53)}});

  const Message back = decode_message(encode_message(resp));
  EXPECT_EQ(back.header, resp.header);
  EXPECT_EQ(back.answers, resp.answers);
  EXPECT_EQ(back.authorities, resp.authorities);
  EXPECT_EQ(back.additionals, resp.additionals);
}

TEST(Codec, HeaderFlagsSurvive) {
  Message m = sample_query();
  m.header.qr = true;
  m.header.aa = true;
  m.header.tc = true;
  m.header.rd = true;
  m.header.ra = true;
  m.header.opcode = Opcode::Update;
  m.header.rcode = Rcode::Refused;
  const Message back = decode_message(encode_message(m));
  EXPECT_EQ(back.header, m.header);
}

TEST(Codec, EdnsRoundTrips) {
  Message q = sample_query();
  q.edns = EdnsInfo{};
  q.edns->udp_payload_size = 4096;
  q.edns->dnssec_ok = true;
  q.edns->options.options.push_back({10, {1, 2, 3}});
  const Message back = decode_message(encode_message(q));
  ASSERT_TRUE(back.edns.has_value());
  EXPECT_EQ(back.edns->udp_payload_size, 4096);
  EXPECT_TRUE(back.edns->dnssec_ok);
  EXPECT_EQ(back.edns->options, q.edns->options);
  // OPT must not leak into additionals.
  EXPECT_TRUE(back.additionals.empty());
}

TEST(Codec, DuplicateOptRejected) {
  Message q = sample_query();
  q.edns = EdnsInfo{};
  auto wire = encode_message(q);
  // Append a second OPT record manually: bump ARCOUNT and append bytes.
  wire[11] = 2;  // arcount low byte (was 1)
  const std::vector<std::uint8_t> opt{0, 0, 41, 4, 0xd0, 0, 0, 0, 0, 0, 0};
  wire.bytes().insert(wire.bytes().end(), opt.begin(), opt.end());
  EXPECT_THROW(decode_message(wire), WireError);
}

TEST(Codec, CompressionShrinksRepeatedNames) {
  Message resp = Message::make_response(sample_query());
  for (int i = 0; i < 4; ++i) {
    resp.answers.push_back(ResourceRecord{
        Name::parse("www.example.nl"), RRClass::IN, 60,
        ARdata{net::IpAddress{static_cast<std::uint32_t>(i)}}});
  }
  const auto wire = encode_message(resp);
  // Each answer's owner should cost 2 bytes (pointer), not 16.
  // Header(12) + question(16+4) + 4 * (2 + 10 + 4) = 96.
  EXPECT_EQ(wire.size(), 96u);
}

TEST(Codec, TruncatedHeaderRejected) {
  const std::vector<std::uint8_t> junk{1, 2, 3};
  EXPECT_THROW(decode_message(junk), WireError);
}

TEST(Codec, TruncatedQuestionRejected) {
  auto wire = encode_message(sample_query());
  wire.bytes().resize(wire.size() - 3);
  EXPECT_THROW(decode_message(wire), WireError);
}

TEST(Codec, GarbageRejectedNotCrash) {
  stats::Rng rng{99};
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(rng.index(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    try {
      (void)decode_message(junk);
    } catch (const WireError&) {
      // expected for most inputs
    }
  }
}

TEST(Codec, MakeResponseEchoesQuestion) {
  const Message q = sample_query();
  const Message r = Message::make_response(q);
  EXPECT_TRUE(r.header.qr);
  EXPECT_EQ(r.header.id, q.header.id);
  ASSERT_EQ(r.questions.size(), 1u);
  EXPECT_EQ(r.questions[0], q.questions[0]);
}

TEST(Codec, ToStringMentionsSections) {
  Message resp = Message::make_response(sample_query());
  resp.answers.push_back(ResourceRecord{
      Name::parse("www.example.nl"), RRClass::IN, 60, TxtRdata{{"x"}}});
  const std::string s = resp.to_string();
  EXPECT_NE(s.find("QUESTION"), std::string::npos);
  EXPECT_NE(s.find("ANSWER"), std::string::npos);
  EXPECT_NE(s.find("NOERROR"), std::string::npos);
}

/// Property sweep: random messages survive encode/decode unchanged.
class CodecFuzzRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CodecFuzzRoundTrip, RandomMessagesRoundTrip) {
  stats::Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919};
  Message m;
  m.header.id = static_cast<std::uint16_t>(rng.next());
  m.header.qr = rng.chance(0.5);
  m.header.aa = rng.chance(0.5);
  m.header.rd = rng.chance(0.5);
  m.header.rcode = rng.chance(0.3) ? Rcode::NxDomain : Rcode::NoError;

  auto random_name = [&rng] {
    std::vector<std::string> labels;
    const std::size_t n = 1 + rng.index(4);
    for (std::size_t i = 0; i < n; ++i) {
      std::string label;
      const std::size_t len = 1 + rng.index(10);
      for (std::size_t j = 0; j < len; ++j) {
        label.push_back("abcdefghij0123456789"[rng.index(20)]);
      }
      labels.push_back(std::move(label));
    }
    return Name::from_labels(std::move(labels));
  };

  m.questions.push_back(Question{random_name(), RRType::TXT, RRClass::IN});
  const std::size_t n_answers = rng.index(5);
  for (std::size_t i = 0; i < n_answers; ++i) {
    switch (rng.index(4)) {
      case 0:
        m.answers.push_back(ResourceRecord{
            random_name(), RRClass::IN,
            static_cast<Ttl>(rng.index(86400)),
            ARdata{net::IpAddress{static_cast<std::uint32_t>(rng.next())}}});
        break;
      case 1:
        m.answers.push_back(ResourceRecord{random_name(), RRClass::IN, 60,
                                           NsRdata{random_name()}});
        break;
      case 2:
        m.answers.push_back(ResourceRecord{random_name(), RRClass::IN, 5,
                                           TxtRdata{{"payload"}}});
        break;
      default:
        m.answers.push_back(ResourceRecord{
            random_name(), RRClass::IN, 30,
            MxRdata{static_cast<std::uint16_t>(rng.index(100)),
                    random_name()}});
        break;
    }
  }
  if (rng.chance(0.5)) m.edns = EdnsInfo{};

  const Message back = decode_message(encode_message(m));
  EXPECT_EQ(back.header, m.header);
  EXPECT_EQ(back.questions, m.questions);
  EXPECT_EQ(back.answers, m.answers);
  EXPECT_EQ(back.edns.has_value(), m.edns.has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzRoundTrip, ::testing::Range(1, 26));

}  // namespace
}  // namespace recwild::dns
