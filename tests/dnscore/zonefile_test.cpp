#include "dnscore/zonefile.hpp"

#include <gtest/gtest.h>

namespace recwild::dns {
namespace {

ZoneFileOptions opts(const char* origin = "example.nl",
                     Ttl default_ttl = 3600) {
  ZoneFileOptions o;
  o.origin = Name::parse(origin);
  o.default_ttl = default_ttl;
  return o;
}

TEST(ZoneFile, ParsesSimpleARecord) {
  const auto records =
      parse_zone_text("www 300 IN A 192.0.2.1\n", opts());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].name, Name::parse("www.example.nl"));
  EXPECT_EQ(records[0].ttl, 300u);
  EXPECT_EQ(records[0].type(), RRType::A);
  EXPECT_EQ(std::get<ARdata>(records[0].rdata).address.to_string(),
            "192.0.2.1");
}

TEST(ZoneFile, AbsoluteNamesNotQualified) {
  const auto records =
      parse_zone_text("host.other.org. IN A 192.0.2.1\n",
                      opts("example.nl"));
  // Owner outside origin is allowed at parser level (zone add rejects it).
  EXPECT_EQ(records[0].name, Name::parse("host.other.org"));
}

TEST(ZoneFile, AtSignMeansOrigin) {
  const auto records =
      parse_zone_text("@ IN NS ns1\n", opts("example.nl"));
  EXPECT_EQ(records[0].name, Name::parse("example.nl"));
  EXPECT_EQ(std::get<NsRdata>(records[0].rdata).nsdname,
            Name::parse("ns1.example.nl"));
}

TEST(ZoneFile, OriginDirectiveChangesQualification) {
  const auto records = parse_zone_text(
      "$ORIGIN sub.example.nl.\nwww IN A 192.0.2.1\n", opts());
  EXPECT_EQ(records[0].name, Name::parse("www.sub.example.nl"));
}

TEST(ZoneFile, TtlDirectiveAndUnits) {
  const auto records = parse_zone_text(
      "$TTL 2h\nwww IN A 192.0.2.1\nmail 1d IN A 192.0.2.2\n", opts());
  EXPECT_EQ(records[0].ttl, 7200u);
  EXPECT_EQ(records[1].ttl, 86400u);
}

TEST(ZoneFile, DefaultTtlApplies) {
  const auto records =
      parse_zone_text("www IN A 192.0.2.1\n", opts("example.nl", 1234));
  EXPECT_EQ(records[0].ttl, 1234u);
}

TEST(ZoneFile, TtlAndClassInEitherOrder) {
  const auto a =
      parse_zone_text("www 300 IN A 192.0.2.1\n", opts());
  const auto b =
      parse_zone_text("www IN 300 A 192.0.2.1\n", opts());
  EXPECT_EQ(a[0], b[0]);
}

TEST(ZoneFile, OwnerInheritedFromPreviousLine) {
  const auto records = parse_zone_text(
      "www IN A 192.0.2.1\n"
      "    IN A 192.0.2.2\n",
      opts());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, records[1].name);
}

TEST(ZoneFile, CommentsIgnored) {
  const auto records = parse_zone_text(
      "; full line comment\n"
      "www IN A 192.0.2.1 ; trailing comment\n",
      opts());
  ASSERT_EQ(records.size(), 1u);
}

TEST(ZoneFile, ParenthesesJoinLines) {
  const auto records = parse_zone_text(
      "@ IN SOA ns1 hostmaster (\n"
      "    2017041201 ; serial\n"
      "    4h 1h ( 2w ) 300\n"
      ")\n",
      opts());
  ASSERT_EQ(records.size(), 1u);
  const auto& soa = std::get<SoaRdata>(records[0].rdata);
  EXPECT_EQ(soa.serial, 2017041201u);
  EXPECT_EQ(soa.refresh, 14400u);
  EXPECT_EQ(soa.retry, 3600u);
  EXPECT_EQ(soa.expire, 1209600u);
  EXPECT_EQ(soa.minimum, 300u);
  EXPECT_EQ(soa.mname, Name::parse("ns1.example.nl"));
}

TEST(ZoneFile, QuotedTxtStrings) {
  const auto records = parse_zone_text(
      "info IN TXT \"hello world\" \"second; not a comment\"\n", opts());
  const auto& txt = std::get<TxtRdata>(records[0].rdata);
  ASSERT_EQ(txt.strings.size(), 2u);
  EXPECT_EQ(txt.strings[0], "hello world");
  EXPECT_EQ(txt.strings[1], "second; not a comment");
}

TEST(ZoneFile, MxPreferenceParsed) {
  const auto records =
      parse_zone_text("@ IN MX 10 mail\n", opts());
  const auto& mx = std::get<MxRdata>(records[0].rdata);
  EXPECT_EQ(mx.preference, 10);
  EXPECT_EQ(mx.exchange, Name::parse("mail.example.nl"));
}

TEST(ZoneFile, SrvAndCaaAndAaaa) {
  const auto records = parse_zone_text(
      "_sip._tcp IN SRV 10 60 5060 sip\n"
      "@ IN CAA 0 issue \"ca.example.net\"\n"
      "v6 IN AAAA 2001:db8::1\n",
      opts());
  ASSERT_EQ(records.size(), 3u);
  const auto& srv = std::get<SrvRdata>(records[0].rdata);
  EXPECT_EQ(srv.port, 5060);
  const auto& caa = std::get<CaaRdata>(records[1].rdata);
  EXPECT_EQ(caa.tag, "issue");
  const auto& v6 = std::get<AaaaRdata>(records[2].rdata);
  EXPECT_EQ(v6.address[0], 0x20);
  EXPECT_EQ(v6.address[1], 0x01);
  EXPECT_EQ(v6.address[15], 0x01);
}

TEST(ZoneFile, WildcardOwnerAllowed) {
  const auto records =
      parse_zone_text("* 5 IN TXT \"FRA\"\n", opts("ourtestdomain.nl"));
  EXPECT_EQ(records[0].name, Name::parse("*.ourtestdomain.nl"));
  EXPECT_EQ(records[0].ttl, 5u);
}

TEST(ZoneFile, ErrorsCarryLineNumbers) {
  try {
    parse_zone_text("www IN A 192.0.2.1\nbad IN A not-an-ip\n", opts());
    FAIL() << "expected ZoneParseError";
  } catch (const ZoneParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(ZoneFile, RejectsMalformedInput) {
  EXPECT_THROW(parse_zone_text("www IN\n", opts()), ZoneParseError);
  EXPECT_THROW(parse_zone_text("www IN A\n", opts()), ZoneParseError);
  EXPECT_THROW(parse_zone_text("www IN A 1.2.3.4 extra\n", opts()),
               ZoneParseError);
  EXPECT_THROW(parse_zone_text("www IN MX abc mail\n", opts()),
               ZoneParseError);
  EXPECT_THROW(parse_zone_text("$BOGUS x\n", opts()), ZoneParseError);
  EXPECT_THROW(parse_zone_text("( www IN A 1.2.3.4\n", opts()),
               ZoneParseError);
  EXPECT_THROW(parse_zone_text(") \n", opts()), ZoneParseError);
  EXPECT_THROW(parse_zone_text("www IN TXT \"unterminated\n", opts()),
               ZoneParseError);
  EXPECT_THROW(parse_zone_text("    IN A 1.2.3.4\n", opts()),
               ZoneParseError);  // no previous owner
}

TEST(ZoneFile, BadIpv6Rejected) {
  EXPECT_THROW(parse_zone_text("v6 IN AAAA zz::1\n", opts()),
               ZoneParseError);
  EXPECT_THROW(parse_zone_text("v6 IN AAAA 1:2:3\n", opts()),
               ZoneParseError);
  EXPECT_THROW(parse_zone_text("v6 IN AAAA 1::2::3\n", opts()),
               ZoneParseError);
}

TEST(ZoneFile, Ipv6Forms) {
  const auto records = parse_zone_text(
      "a IN AAAA ::1\n"
      "b IN AAAA fe80::\n"
      "c IN AAAA 1:2:3:4:5:6:7:8\n",
      opts());
  EXPECT_EQ(std::get<AaaaRdata>(records[0].rdata).address[15], 1);
  EXPECT_EQ(std::get<AaaaRdata>(records[1].rdata).address[0], 0xfe);
  EXPECT_EQ(std::get<AaaaRdata>(records[2].rdata).address[15], 8);
}

TEST(ZoneFile, ToZoneTextRoundTripsThroughParser) {
  const char* text =
      "@ 3600 IN SOA ns1.example.nl. hostmaster.example.nl. 1 7200 3600 "
      "1209600 300\n"
      "@ 3600 IN NS ns1\n"
      "ns1 3600 IN A 192.0.2.53\n"
      "www 60 IN A 192.0.2.80\n";
  const auto records = parse_zone_text(text, opts());
  const std::string rendered = to_zone_text(records);
  const auto reparsed = parse_zone_text(rendered, opts());
  EXPECT_EQ(records, reparsed);
}

TEST(ZoneFile, EmptyInputGivesNoRecords) {
  EXPECT_TRUE(parse_zone_text("", opts()).empty());
  EXPECT_TRUE(parse_zone_text("\n\n; nothing\n", opts()).empty());
}

}  // namespace
}  // namespace recwild::dns
