#include "dnscore/types.hpp"

#include <gtest/gtest.h>

namespace recwild::dns {
namespace {

TEST(Types, RRTypeToString) {
  EXPECT_EQ(to_string(RRType::A), "A");
  EXPECT_EQ(to_string(RRType::NS), "NS");
  EXPECT_EQ(to_string(RRType::TXT), "TXT");
  EXPECT_EQ(to_string(RRType::AAAA), "AAAA");
  EXPECT_EQ(to_string(RRType::SOA), "SOA");
  EXPECT_EQ(to_string(static_cast<RRType>(9999)), "TYPE?");
}

TEST(Types, RRTypeFromStringRoundTrip) {
  for (const RRType t : {RRType::A, RRType::NS, RRType::CNAME, RRType::SOA,
                         RRType::PTR, RRType::MX, RRType::TXT, RRType::AAAA,
                         RRType::SRV, RRType::OPT, RRType::CAA,
                         RRType::ANY}) {
    const auto back = rrtype_from_string(to_string(t));
    ASSERT_TRUE(back.has_value()) << to_string(t);
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(rrtype_from_string("BOGUS").has_value());
  EXPECT_FALSE(rrtype_from_string("a").has_value());  // case-sensitive
}

TEST(Types, RRClassConversions) {
  EXPECT_EQ(to_string(RRClass::IN), "IN");
  EXPECT_EQ(to_string(RRClass::CH), "CH");
  EXPECT_EQ(rrclass_from_string("IN"), RRClass::IN);
  EXPECT_EQ(rrclass_from_string("CH"), RRClass::CH);
  EXPECT_EQ(rrclass_from_string("ANY"), RRClass::ANY);
  EXPECT_FALSE(rrclass_from_string("XX").has_value());
}

TEST(Types, OpcodeAndRcodeNames) {
  EXPECT_EQ(to_string(Opcode::Query), "QUERY");
  EXPECT_EQ(to_string(Opcode::Update), "UPDATE");
  EXPECT_EQ(to_string(Rcode::NoError), "NOERROR");
  EXPECT_EQ(to_string(Rcode::NxDomain), "NXDOMAIN");
  EXPECT_EQ(to_string(Rcode::ServFail), "SERVFAIL");
  EXPECT_EQ(to_string(Rcode::Refused), "REFUSED");
}

TEST(Types, SupportedRdataTypes) {
  EXPECT_TRUE(is_supported_rdata_type(RRType::A));
  EXPECT_TRUE(is_supported_rdata_type(RRType::TXT));
  EXPECT_TRUE(is_supported_rdata_type(RRType::OPT));
  EXPECT_FALSE(is_supported_rdata_type(RRType::ANY));
  EXPECT_FALSE(is_supported_rdata_type(static_cast<RRType>(65000)));
}

}  // namespace
}  // namespace recwild::dns
