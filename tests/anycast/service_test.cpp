#include "anycast/service.hpp"

#include <gtest/gtest.h>

#include "dnscore/codec.hpp"

namespace recwild::anycast {
namespace {

constexpr const char* kZoneText = R"(
@ IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* 5 IN TXT "anycast"
)";

struct Fixture {
  net::Simulation sim{5};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  Fixture() {
    params.loss_rate = 0;
    net_ = std::make_unique<net::Network>(sim, params);
  }
};

TEST(AnycastService, CreateBuildsSites) {
  Fixture f;
  auto svc = AnycastService::create(*f.net_, "k-root",
                                    f.net_->allocate_address(),
                                    {"AMS", "NRT", "IAD"});
  EXPECT_EQ(svc.site_count(), 3u);
  EXPECT_TRUE(svc.is_anycast());
  EXPECT_EQ(svc.sites()[0].code, "AMS");
  EXPECT_EQ(svc.sites()[1].server->identity(), "k-root.NRT");
}

TEST(AnycastService, UnknownSiteCodeThrows) {
  Fixture f;
  EXPECT_THROW(AnycastService::create(*f.net_, "x",
                                      f.net_->allocate_address(), {"???"}),
               std::invalid_argument);
}

TEST(AnycastService, SingleSiteIsUnicast) {
  Fixture f;
  auto svc = AnycastService::create(*f.net_, "uni",
                                    f.net_->allocate_address(), {"AMS"});
  EXPECT_FALSE(svc.is_anycast());
}

TEST(AnycastService, CatchmentIsNearestSite) {
  Fixture f;
  auto svc = AnycastService::create(*f.net_, "root",
                                    f.net_->allocate_address(),
                                    {"FRA", "SYD", "IAD"});
  svc.add_zone(authns::Zone::from_text(dns::Name::parse("x.nl"), kZoneText));
  svc.start();
  const net::NodeId eu_client =
      f.net_->add_node("eu", net::find_location("AMS")->point);
  const net::NodeId au_client =
      f.net_->add_node("au", net::find_location("MEL")->point);
  const Site* eu_site = svc.catchment(eu_client);
  const Site* au_site = svc.catchment(au_client);
  ASSERT_NE(eu_site, nullptr);
  ASSERT_NE(au_site, nullptr);
  EXPECT_EQ(eu_site->code, "FRA");
  EXPECT_EQ(au_site->code, "SYD");
}

TEST(AnycastService, SitesAnswerWithSharedAddress) {
  Fixture f;
  auto svc = AnycastService::create(*f.net_, "root",
                                    f.net_->allocate_address(),
                                    {"FRA", "SYD"});
  svc.add_zone(authns::Zone::from_text(dns::Name::parse("x.nl"), kZoneText));
  svc.start();

  const net::NodeId client =
      f.net_->add_node("client", net::find_location("AMS")->point);
  const net::Endpoint cep{f.net_->allocate_address(), 4000};
  std::vector<dns::Message> answers;
  f.net_->listen(client, cep, [&](const net::Datagram& d, net::NodeId) {
    EXPECT_EQ(d.src.addr, svc.address());  // reply from the shared address
    answers.push_back(dns::decode_message(d.payload));
  });
  f.net_->send(client, cep, net::Endpoint{svc.address(), net::kDnsPort},
               dns::encode_message(dns::Message::make_query(
                   1, dns::Name::parse("q.x.nl"), dns::RRType::TXT)));
  f.sim.run();
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(std::get<dns::TxtRdata>(answers[0].answers.at(0).rdata)
                .strings[0],
            "anycast");
  // Only the European site logged the query.
  EXPECT_EQ(svc.sites()[0].server->log().total(), 1u);
  EXPECT_EQ(svc.sites()[1].server->log().total(), 0u);
  EXPECT_EQ(svc.total_queries(), 1u);
}

TEST(AnycastService, SiteFailureLeavesCatchmentDark) {
  // Anycast failure mode: a down site keeps attracting its catchment (BGP
  // still routes there) but answers nothing — queries black-hole.
  Fixture f;
  auto svc = AnycastService::create(*f.net_, "root",
                                    f.net_->allocate_address(),
                                    {"FRA", "SYD"});
  svc.add_zone(authns::Zone::from_text(dns::Name::parse("x.nl"), kZoneText));
  svc.start();
  svc.set_site_down(0, true);  // FRA dark

  const net::NodeId client =
      f.net_->add_node("client", net::find_location("AMS")->point);
  const net::Endpoint cep{f.net_->allocate_address(), 4000};
  int replies = 0;
  f.net_->listen(client, cep,
                 [&](const net::Datagram&, net::NodeId) { ++replies; });
  f.net_->send(client, cep, net::Endpoint{svc.address(), net::kDnsPort},
               dns::encode_message(dns::Message::make_query(
                   2, dns::Name::parse("q.x.nl"), dns::RRType::TXT)));
  f.sim.run();
  EXPECT_EQ(replies, 0);
  EXPECT_EQ(svc.sites()[0].server->queries_received(), 1u);
  svc.set_site_down(0, false);
}

TEST(AnycastService, StopUnbindsAllSites) {
  Fixture f;
  auto svc = AnycastService::create(*f.net_, "root",
                                    f.net_->allocate_address(),
                                    {"FRA", "SYD"});
  svc.add_zone(authns::Zone::from_text(dns::Name::parse("x.nl"), kZoneText));
  svc.start();
  svc.stop();
  const net::NodeId client =
      f.net_->add_node("client", net::find_location("AMS")->point);
  EXPECT_FALSE(f.net_->send(client, net::Endpoint{},
                            net::Endpoint{svc.address(), net::kDnsPort},
                            {}));
}

TEST(AnycastService, SetAllDown) {
  Fixture f;
  auto svc = AnycastService::create(*f.net_, "root",
                                    f.net_->allocate_address(),
                                    {"FRA", "SYD"});
  svc.set_all_down(true);
  for (const auto& site : svc.sites()) {
    EXPECT_TRUE(site.server->is_down());
  }
}

}  // namespace
}  // namespace recwild::anycast
