// Dynamic anycast catchments: BGP-withdrawal timelines (Sinking loss, then
// transparent failover), graceful drains, time-varying catchment queries,
// the lowest-site-code tie-break and load-aware steering.
#include "anycast/route_control.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "anycast/service.hpp"
#include "dnscore/codec.hpp"
#include "obs/names.hpp"

namespace recwild::anycast {
namespace {

constexpr const char* kZoneText = R"(
@ IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* 5 IN TXT "anycast"
)";

net::SimTime at_s(double s) {
  return net::SimTime::origin() + net::Duration::seconds(s);
}

struct Fixture {
  net::Simulation sim{7};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  Fixture() {
    params.loss_rate = 0;
    net_ = std::make_unique<net::Network>(sim, params);
  }
};

/// A two-site (FRA, SYD) service, a client near FRA, and a harness that
/// fires one query at a chosen sim time and records which site answered.
struct Harness : Fixture {
  AnycastService svc;
  net::NodeId client;
  net::Endpoint client_ep;
  std::vector<std::uint16_t> answered_ids;

  Harness()
      : svc(AnycastService::create(*net_, "root", net_->allocate_address(),
                                   {"FRA", "SYD"})) {
    svc.add_zone(authns::Zone::from_text(dns::Name::parse("x.nl"),
                                         kZoneText));
    svc.start();
    client = net_->add_node("client", net::find_location("AMS")->point);
    client_ep = net::Endpoint{net_->allocate_address(), 4000};
    net_->listen(client, client_ep, [this](const net::Datagram& d,
                                           net::NodeId) {
      answered_ids.push_back(dns::decode_message(d.payload).header.id);
    });
  }

  void query_at(net::SimTime at, std::uint16_t id) {
    sim.at(at, [this, id] {
      net_->send(client, client_ep,
                 net::Endpoint{svc.address(), net::kDnsPort},
                 dns::encode_message(dns::Message::make_query(
                     id, dns::Name::parse("q.x.nl"), dns::RRType::TXT)));
    });
    sim.run();
  }

  [[nodiscard]] std::uint64_t fra_queries() const {
    return svc.sites()[0].server->queries_received();
  }
  [[nodiscard]] std::uint64_t syd_queries() const {
    return svc.sites()[1].server->queries_received();
  }
};

TEST(RouteControl, WithdrawalTimelineConvergesThenFailsOver) {
  Harness h;
  h.sim.trace().set_enabled(true);
  // FRA withdraws at t=10s, the client's routers converge at t=14s, and
  // FRA re-announces at t=30s.
  h.svc.route_control().add_outage(h.svc.sites()[0].node, "FRA",
                                   OutageWindow{at_s(10), at_s(14),
                                                at_s(30)});

  h.query_at(at_s(1), 1);   // before: FRA answers
  h.query_at(at_s(12), 2);  // Sinking: lost in the dead path
  h.query_at(at_s(20), 3);  // Withdrawn: SYD answers (failover)
  h.query_at(at_s(40), 4);  // re-announced: back to FRA

  ASSERT_EQ(h.answered_ids.size(), 3u);
  EXPECT_EQ(h.answered_ids[0], 1);
  EXPECT_EQ(h.answered_ids[1], 3);
  EXPECT_EQ(h.answered_ids[2], 4);
  EXPECT_EQ(h.fra_queries(), 2u);  // the sunk packet never reached FRA
  EXPECT_EQ(h.syd_queries(), 1u);

  const auto& metrics = h.sim.metrics();
  const auto snap = metrics.snapshot();
  EXPECT_EQ(snap.counter_value(obs::names::kAnycastLostInConvergence), 1u);
  // Two shifts on this flow: FRA>SYD at t=20, SYD>FRA at t=40.
  EXPECT_EQ(snap.counter_value(obs::names::kAnycastCatchmentShift), 2u);

  // The FRA>SYD shift happened 10s after the withdrawal — recorded in the
  // failover histogram and on the catchment_shift trace row.
  bool found_failover_row = false;
  for (const auto& hist : snap.histograms) {
    if (hist.name == obs::names::kAnycastFailoverLatencyMs) {
      EXPECT_EQ(hist.total, 1u);
      found_failover_row = true;
    }
  }
  EXPECT_TRUE(found_failover_row);
  bool found_shift_trace = false;
  for (const auto& e : h.sim.trace().events()) {
    if (e.kind != obs::TraceKind::CatchmentShift) continue;
    if (e.detail == "FRA>SYD") {
      EXPECT_DOUBLE_EQ(e.value, 10'000.0);  // ms since withdrawal
      found_shift_trace = true;
    }
  }
  EXPECT_TRUE(found_shift_trace);
}

TEST(RouteControl, CatchmentIsTimeVarying) {
  Harness h;
  h.svc.route_control().add_outage(h.svc.sites()[0].node, "FRA",
                                   OutageWindow{at_s(10), at_s(14),
                                                at_s(30)});
  // Pure function of (node, now): usable for past and future instants.
  EXPECT_EQ(h.svc.catchment(h.client, at_s(0))->code, "FRA");
  // During convergence the client's routers still steer to FRA.
  EXPECT_EQ(h.svc.catchment(h.client, at_s(12))->code, "FRA");
  EXPECT_EQ(h.svc.catchment(h.client, at_s(20))->code, "SYD");
  EXPECT_EQ(h.svc.catchment(h.client, at_s(35))->code, "FRA");

  EXPECT_EQ(h.svc.route_control().site_state(h.svc.sites()[0].node,
                                             at_s(12)),
            net::RouteState::Sinking);
  EXPECT_EQ(h.svc.route_control().site_state(h.svc.sites()[0].node,
                                             at_s(20)),
            net::RouteState::Withdrawn);
  h.svc.route_control().clear_outages();
  EXPECT_EQ(h.svc.route_control().site_state(h.svc.sites()[0].node,
                                             at_s(20)),
            net::RouteState::Announced);
}

TEST(RouteControl, DrainSteersWithoutLoss) {
  Harness h;
  h.svc.drain(0, at_s(10), at_s(30));  // maintenance window on FRA

  h.query_at(at_s(12), 1);  // during the drain: SYD answers immediately
  h.query_at(at_s(40), 2);  // after: FRA rejoined

  ASSERT_EQ(h.answered_ids.size(), 2u);
  EXPECT_EQ(h.syd_queries(), 1u);
  EXPECT_EQ(h.fra_queries(), 1u);
  const auto snap = h.sim.metrics().snapshot();
  // A drain is announced ahead of the window: no convergence-loss phase.
  EXPECT_EQ(snap.counter_value(obs::names::kAnycastLostInConvergence), 0u);
  EXPECT_EQ(snap.counter_value(obs::names::kAnycastSiteDrained), 1u);
}

TEST(RouteControl, DrainRejectsEmptyWindow) {
  Harness h;
  EXPECT_THROW(h.svc.drain(0, at_s(10), at_s(10)), std::invalid_argument);
  EXPECT_THROW(h.svc.drain(9, at_s(10), at_s(20)), std::out_of_range);
}

TEST(RouteControl, CatchmentTieBreaksOnLowestSiteCode) {
  // Two sites at the same point (bit-identical RTT): the catchment must
  // pin deterministically to the lowest site code, whatever the site
  // order.
  Fixture f;
  const auto loc = net::find_location("FRA")->point;
  std::vector<SitePlan> plans;
  plans.push_back({"BBB", loc, f.net_->add_node("svc@BBB", loc)});
  plans.push_back({"AAA", loc, f.net_->add_node("svc@AAA", loc)});
  auto svc = AnycastService::create_at(*f.net_, "svc",
                                       f.net_->allocate_address(), plans);
  const net::NodeId client =
      f.net_->add_node("client", net::find_location("AMS")->point);
  ASSERT_NE(svc.catchment(client, at_s(0)), nullptr);
  EXPECT_EQ(svc.catchment(client, at_s(0))->code, "AAA");
}

TEST(RouteControl, LoadCapShedsTheHotSiteOnly) {
  Fixture f;
  const net::IpAddress addr = f.net_->allocate_address();
  const net::NodeId hot = f.net_->add_node("hot", net::find_location("FRA")->point);
  const net::NodeId cold =
      f.net_->add_node("cold", net::find_location("IAD")->point);
  const net::NodeId from =
      f.net_->add_node("from", net::find_location("AMS")->point);
  RouteControl rc{*f.net_, addr, "svc"};
  rc.set_load_cap(0.6);
  // Feed an uneven selection history: 30 picks of `hot`, 2 of `cold`.
  for (int i = 0; i < 30; ++i) rc.on_selected(addr, from, hot, at_s(i));
  for (int i = 0; i < 2; ++i) rc.on_selected(addr, from, cold, at_s(40 + i));
  // Over the 60% cap with a less-loaded announced alternative: shed.
  EXPECT_EQ(rc.route_state(addr, hot, at_s(50)),
            net::RouteState::Withdrawn);
  // The cold site must never be shed — some site always stays announced.
  EXPECT_EQ(rc.route_state(addr, cold, at_s(50)),
            net::RouteState::Announced);
  // Other addresses are not managed by this control.
  EXPECT_EQ(rc.route_state(f.net_->allocate_address(), hot, at_s(50)),
            net::RouteState::Announced);
}

TEST(RouteControl, SetSiteDownStaysBlackholed) {
  // The deprecated ad-hoc path keeps its semantics: the dark site never
  // leaves the catchment, so its queries black-hole forever (what the
  // withdraw path is the engineered alternative to).
  Harness h;
  h.svc.set_site_down(0, true);
  h.query_at(at_s(5), 1);
  EXPECT_TRUE(h.answered_ids.empty());
  EXPECT_EQ(h.fra_queries(), 1u);  // still attracted the query
}

}  // namespace
}  // namespace recwild::anycast
