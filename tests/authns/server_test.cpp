#include "authns/server.hpp"

#include <gtest/gtest.h>

#include "obs/names.hpp"

namespace recwild::authns {
namespace {

constexpr const char* kZoneText = R"(
$TTL 3600
@    IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@    IN NS  ns1
ns1  IN A   192.0.2.1
*    5 IN TXT "FRA"
big  IN TXT "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"
big  IN TXT "yyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyyy"
big  IN TXT "zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz"
huge IN TXT "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
huge IN TXT "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
huge IN TXT "cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc"
huge IN TXT "dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd"
huge IN TXT "eeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeee"
huge IN TXT "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
huge IN TXT "gggggggggggggggggggggggggggggggggggggggggggggggggggggggggggg"
huge IN TXT "hhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhhh"
huge IN TXT "iiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiiii"
huge IN TXT "jjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjjj"
huge IN TXT "kkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkkk"
huge IN TXT "llllllllllllllllllllllllllllllllllllllllllllllllllllllllllll"
huge IN TXT "mmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmmm"
huge IN TXT "nnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnn"
huge IN TXT "oooooooooooooooooooooooooooooooooooooooooooooooooooooooooooo"
huge IN TXT "pppppppppppppppppppppppppppppppppppppppppppppppppppppppppppp"
huge IN TXT "qqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqqq"
huge IN TXT "rrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrrr"
huge IN TXT "ssssssssssssssssssssssssssssssssssssssssssssssssssssssssssss"
huge IN TXT "tttttttttttttttttttttttttttttttttttttttttttttttttttttttttttt"
huge IN TXT "uuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuu"
)";

struct Fixture {
  net::Simulation sim{77};
  net::LatencyParams params{};
  Fixture() { params.loss_rate = 0.0; }
};

struct World {
  Fixture f;
  net::Network net{f.sim, f.params};
  net::NodeId server_node;
  net::NodeId client_node;
  net::Endpoint server_ep;
  net::Endpoint client_ep;
  std::unique_ptr<AuthServer> server;
  std::vector<dns::Message> received;

  World() {
    server_node = net.add_node("auth", net::find_location("FRA")->point);
    client_node = net.add_node("client", net::find_location("AMS")->point);
    server_ep = net::Endpoint{net.allocate_address(), net::kDnsPort};
    client_ep = net::Endpoint{net.allocate_address(), 5555};
    AuthServerConfig cfg;
    cfg.identity = "testsrv.fra";
    server = std::make_unique<AuthServer>(net, server_node, server_ep, cfg);
    server->add_zone(
        Zone::from_text(dns::Name::parse("ourtestdomain.nl"), kZoneText));
    server->start();
    net.listen(client_node, client_ep,
               [this](const net::Datagram& d, net::NodeId) {
                 received.push_back(dns::decode_message(d.payload));
               });
  }

  void send(dns::Message query) {
    net.send(client_node, client_ep, server_ep,
             dns::encode_message(query));
    f.sim.run();
  }
};

TEST(AuthServer, AnswersOverTheNetwork) {
  World w;
  w.send(dns::Message::make_query(1, dns::Name::parse("abc.ourtestdomain.nl"),
                                  dns::RRType::TXT));
  ASSERT_EQ(w.received.size(), 1u);
  const auto& resp = w.received[0];
  EXPECT_TRUE(resp.header.qr);
  EXPECT_TRUE(resp.header.aa);
  EXPECT_EQ(resp.header.id, 1);
  ASSERT_EQ(resp.answers.size(), 1u);
  EXPECT_EQ(std::get<dns::TxtRdata>(resp.answers[0].rdata).strings[0],
            "FRA");
  EXPECT_EQ(w.server->queries_received(), 1u);
  EXPECT_EQ(w.server->responses_sent(), 1u);
}

TEST(AuthServer, ResponseTakesNetworkAndProcessingTime) {
  World w;
  w.send(dns::Message::make_query(2, dns::Name::parse("x.ourtestdomain.nl"),
                                  dns::RRType::TXT));
  // AMS<->FRA RTT is ~15-60 ms in the model; response cannot be instant.
  EXPECT_GT(w.f.sim.now().ms(), 5.0);
}

TEST(AuthServer, LogsEveryQuery) {
  World w;
  w.send(dns::Message::make_query(3, dns::Name::parse("a.ourtestdomain.nl"),
                                  dns::RRType::TXT));
  w.send(dns::Message::make_query(4, dns::Name::parse("b.ourtestdomain.nl"),
                                  dns::RRType::TXT));
  EXPECT_EQ(w.server->log().total(), 2u);
  EXPECT_EQ(w.server->log().per_client().at(w.client_ep.addr), 2u);
  const auto& entry = w.server->log().entries()[0];
  EXPECT_EQ(entry.qname, dns::Name::parse("a.ourtestdomain.nl"));
}

TEST(AuthServer, DownServerLogsButDoesNotAnswer) {
  World w;
  w.server->set_down(true);
  w.send(dns::Message::make_query(5, dns::Name::parse("c.ourtestdomain.nl"),
                                  dns::RRType::TXT));
  EXPECT_TRUE(w.received.empty());
  EXPECT_EQ(w.server->queries_received(), 1u);
  EXPECT_EQ(w.server->log().total(), 1u);
  w.server->set_down(false);
  w.send(dns::Message::make_query(6, dns::Name::parse("d.ourtestdomain.nl"),
                                  dns::RRType::TXT));
  EXPECT_EQ(w.received.size(), 1u);
}

TEST(AuthServer, ChaosIdentityQueries) {
  World w;
  dns::Message q = dns::Message::make_query(
      7, dns::Name::parse("hostname.bind"), dns::RRType::TXT);
  q.questions[0].qclass = dns::RRClass::CH;
  w.send(q);
  ASSERT_EQ(w.received.size(), 1u);
  ASSERT_EQ(w.received[0].answers.size(), 1u);
  EXPECT_EQ(
      std::get<dns::TxtRdata>(w.received[0].answers[0].rdata).strings[0],
      "testsrv.fra");
}

TEST(AuthServer, ChaosUnknownNameRefused) {
  World w;
  dns::Message q = dns::Message::make_query(
      8, dns::Name::parse("version.weird"), dns::RRType::TXT);
  q.questions[0].qclass = dns::RRClass::CH;
  w.send(q);
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_EQ(w.received[0].header.rcode, dns::Rcode::Refused);
}

TEST(AuthServer, RefusesForeignZone) {
  World w;
  w.send(dns::Message::make_query(9, dns::Name::parse("www.other.org"),
                                  dns::RRType::A));
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_EQ(w.received[0].header.rcode, dns::Rcode::Refused);
}

TEST(AuthServer, IgnoresResponsesAndGarbage) {
  World w;
  dns::Message not_a_query = dns::Message::make_query(
      10, dns::Name::parse("x.ourtestdomain.nl"), dns::RRType::TXT);
  not_a_query.header.qr = true;
  w.send(not_a_query);
  EXPECT_TRUE(w.received.empty());

  w.net.send(w.client_node, w.client_ep, w.server_ep, {0xde, 0xad});
  w.f.sim.run();
  EXPECT_TRUE(w.received.empty());
}

TEST(AuthServer, TruncatesOversizePlainUdp) {
  World w;
  // Shrink the plain-UDP limit so the 3-string TXT response overflows.
  AuthServerConfig cfg;
  cfg.identity = "small";
  cfg.plain_udp_limit = 100;
  auto small = std::make_unique<AuthServer>(
      w.net, w.server_node, net::Endpoint{w.net.allocate_address(), 53},
      cfg);
  small->add_zone(
      Zone::from_text(dns::Name::parse("ourtestdomain.nl"), kZoneText));
  small->start();
  w.net.send(w.client_node, w.client_ep, small->endpoint(),
             dns::encode_message(dns::Message::make_query(
                 11, dns::Name::parse("big.ourtestdomain.nl"),
                 dns::RRType::TXT)));
  w.f.sim.run();
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_TRUE(w.received[0].header.tc);
  EXPECT_TRUE(w.received[0].answers.empty());
}

TEST(AuthServer, EdnsRaisesTheLimit) {
  World w;
  dns::Message q = dns::Message::make_query(
      12, dns::Name::parse("big.ourtestdomain.nl"), dns::RRType::TXT);
  q.edns = dns::EdnsInfo{};
  q.edns->udp_payload_size = 4096;
  w.send(q);
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_FALSE(w.received[0].header.tc);
  EXPECT_EQ(w.received[0].answers.size(), 3u);
  EXPECT_TRUE(w.received[0].edns.has_value());
}

TEST(AuthServer, AnswerUnitApi) {
  World w;
  const auto resp = w.server->answer(dns::Message::make_query(
      13, dns::Name::parse("unit.ourtestdomain.nl"), dns::RRType::TXT));
  EXPECT_TRUE(resp.header.aa);
  ASSERT_EQ(resp.answers.size(), 1u);
}

TEST(AuthServer, EmptyQuestionIsFormErr) {
  World w;
  dns::Message q;
  q.header.id = 14;
  const auto resp = w.server->answer(q);
  EXPECT_EQ(resp.header.rcode, dns::Rcode::FormErr);
}

TEST(AuthServer, StopUnbindsFromNetwork) {
  World w;
  w.server->stop();
  EXPECT_FALSE(w.net.send(
      w.client_node, w.client_ep, w.server_ep,
      dns::encode_message(dns::Message::make_query(
          15, dns::Name::parse("x.ourtestdomain.nl"), dns::RRType::TXT))));
}

TEST(AuthServer, MostSpecificZoneWins) {
  World w;
  // Add a parent zone; the child zone must still answer for its names.
  const char* parent = R"(
@    IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@    IN NS  ns1
ns1  IN A 192.0.2.99
ourtestdomain IN NS ns1.ourtestdomain
ns1.ourtestdomain IN A 192.0.2.1
)";
  w.server->add_zone(Zone::from_text(dns::Name::parse("nl"), parent));
  w.send(dns::Message::make_query(
      16, dns::Name::parse("pick.ourtestdomain.nl"), dns::RRType::TXT));
  ASSERT_EQ(w.received.size(), 1u);
  // Served from the child zone's wildcard, not the parent's delegation.
  ASSERT_EQ(w.received[0].answers.size(), 1u);
  EXPECT_TRUE(w.received[0].header.aa);
}


TEST(AuthServer, TinyEdnsAdvertisementClampedUpTo512) {
  World w;
  // RFC 6891 Â§6.2.3: an advertised payload size below 512 is treated as
  // 512. The ~300-byte TXT answer must NOT truncate for a client that
  // advertises 100 octets (before the clamp it would have).
  dns::Message q = dns::Message::make_query(
      20, dns::Name::parse("big.ourtestdomain.nl"), dns::RRType::TXT);
  q.edns = dns::EdnsInfo{};
  q.edns->udp_payload_size = 100;
  w.send(q);
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_FALSE(w.received[0].header.tc);
  EXPECT_EQ(w.received[0].answers.size(), 3u);
}

TEST(AuthServer, HugeEdnsAdvertisementCappedAt1232) {
  World w;
  // The other side of the clamp: advertising 65535 does not talk us into
  // sending past our 1232-octet fragmentation-safe ceiling.
  dns::Message q = dns::Message::make_query(
      21, dns::Name::parse("huge.ourtestdomain.nl"), dns::RRType::TXT);
  q.edns = dns::EdnsInfo{};
  q.edns->udp_payload_size = 65535;
  w.send(q);
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_TRUE(w.received[0].header.tc);
  EXPECT_TRUE(w.received[0].answers.empty());
  ASSERT_TRUE(w.received[0].edns.has_value());
  EXPECT_EQ(w.received[0].edns->udp_payload_size, 1232);
}

TEST(AuthServer, MalformedQueryAnsweredWithFormErr) {
  World w;
  // A full header claiming one question, then a label that overruns the
  // datagram: decode fails, but there is enough to address a reply.
  w.net.send(w.client_node, w.client_ep, w.server_ep,
             net::WireBuffer{{0x12, 0x34, 0x00, 0x00, 0x00, 0x01, 0x00,
                              0x00, 0x00, 0x00, 0x00, 0x00, 0x3f, 0x41}});
  w.f.sim.run();
  ASSERT_EQ(w.received.size(), 1u);
  EXPECT_TRUE(w.received[0].header.qr);
  EXPECT_EQ(w.received[0].header.id, 0x1234);
  EXPECT_EQ(w.received[0].header.rcode, dns::Rcode::FormErr);
  EXPECT_TRUE(w.received[0].questions.empty());
  EXPECT_EQ(w.f.sim.metrics().snapshot().counter_value(
                obs::names::kAuthnsFormerr),
            1u);
}

TEST(AuthServer, MalformedResponseNeverAnswered) {
  World w;
  // Same overrun, but QR=1: answering would let two broken servers (or a
  // spoofed victim) bounce FORMERRs at each other forever.
  w.net.send(w.client_node, w.client_ep, w.server_ep,
             net::WireBuffer{{0x12, 0x34, 0x80, 0x00, 0x00, 0x01, 0x00,
                              0x00, 0x00, 0x00, 0x00, 0x00, 0x3f, 0x41}});
  w.f.sim.run();
  EXPECT_TRUE(w.received.empty());
  // And the lazy formerr counter was never even registered.
  EXPECT_EQ(w.f.sim.metrics().snapshot().counter_value(
                obs::names::kAuthnsFormerr),
            0u);
}

}  // namespace
}  // namespace recwild::authns
