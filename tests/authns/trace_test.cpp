#include "authns/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "authns/server.hpp"

namespace recwild::authns {
namespace {

QueryLog sample_log() {
  QueryLog log;
  log.record({net::SimTime::from_micros(1'000),
              net::IpAddress::from_octets(10, 0, 0, 1),
              dns::Name::parse("a.example.nl"), dns::RRType::TXT,
              dns::Rcode::NoError});
  log.record({net::SimTime::from_micros(2'500),
              net::IpAddress::from_octets(10, 0, 0, 2),
              dns::Name::parse("b.example.nl"), dns::RRType::A,
              dns::Rcode::NxDomain});
  return log;
}

TEST(Trace, WriteReadRoundTrip) {
  std::ostringstream out;
  write_trace(out, sample_log(), "fra-site-1");
  std::istringstream in{out.str()};
  const auto records = read_trace(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].at.count_micros(), 1'000);
  EXPECT_EQ(records[0].client.to_string(), "10.0.0.1");
  EXPECT_EQ(records[0].server, "fra-site-1");
  EXPECT_EQ(records[0].qname, dns::Name::parse("a.example.nl"));
  EXPECT_EQ(records[0].qtype, dns::RRType::TXT);
  EXPECT_EQ(records[1].rcode, dns::Rcode::NxDomain);
}

TEST(Trace, SkipsCommentsAndBlankLines) {
  std::istringstream in{
      "# DITL-style trace\n"
      "\n"
      "42\t10.0.0.1\tsrv\tx.nl.\tA\tNOERROR\n"};
  const auto records = read_trace(in);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].at.count_micros(), 42);
}

TEST(Trace, RejectsMalformedLines) {
  auto reject = [](const char* text) {
    std::istringstream in{text};
    EXPECT_THROW((void)read_trace(in), std::runtime_error) << text;
  };
  reject("notanumber\t10.0.0.1\tsrv\tx.nl.\tA\tNOERROR\n");
  reject("42\t999.0.0.1\tsrv\tx.nl.\tA\tNOERROR\n");
  reject("42\t10.0.0.1\tsrv\tx.nl.\tBOGUS\tNOERROR\n");
  reject("42\t10.0.0.1\tsrv\tx.nl.\tA\tWEIRD\n");
  reject("42\t10.0.0.1\tsrv\n");
}

TEST(Trace, MergeSortsByTime) {
  std::vector<TraceRecord> t1;
  std::vector<TraceRecord> t2;
  TraceRecord r;
  r.qname = dns::Name::parse("x.nl");
  r.at = net::SimTime::from_micros(30);
  r.server = "b";
  t1.push_back(r);
  r.at = net::SimTime::from_micros(10);
  r.server = "a";
  t2.push_back(r);
  r.at = net::SimTime::from_micros(20);
  r.server = "a";
  t2.push_back(r);
  const auto merged = merge_traces({t1, t2});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].at.count_micros(), 10);
  EXPECT_EQ(merged[1].at.count_micros(), 20);
  EXPECT_EQ(merged[2].at.count_micros(), 30);
}

TEST(Trace, SummarizeCountsPerServerAndClient) {
  std::ostringstream out;
  write_trace(out, sample_log(), "site-a");
  write_trace(out, sample_log(), "site-b");
  std::istringstream in{out.str()};
  const auto stats = summarize_trace(read_trace(in));
  EXPECT_EQ(stats.total, 4u);
  ASSERT_EQ(stats.per_server.size(), 2u);
  EXPECT_EQ(stats.per_server[0].second, 2u);
  ASSERT_EQ(stats.per_client.size(), 2u);
  EXPECT_EQ(stats.per_client[0].second, 2u);
}

TEST(Trace, EndToEndFromSimulatedServer) {
  // Write an actual simulated server's log and re-read it.
  net::Simulation sim{3};
  net::LatencyParams lp;
  lp.loss_rate = 0;
  net::Network network{sim, lp};
  const net::IpAddress addr = network.allocate_address();
  Zone zone{dns::Name::parse("t.nl")};
  dns::SoaRdata soa;
  zone.add({zone.origin(), dns::RRClass::IN, 60, soa});
  zone.add({zone.origin(), dns::RRClass::IN, 60,
            dns::NsRdata{dns::Name::parse("ns.t.nl")}});
  zone.add({dns::Name::parse("*.t.nl"), dns::RRClass::IN, 5,
            dns::TxtRdata{{"x"}}});
  AuthServerConfig cfg;
  cfg.identity = "trace-test";
  AuthServer server{network,
                    network.add_node("s", net::find_location("FRA")->point),
                    net::Endpoint{addr, net::kDnsPort}, cfg};
  server.add_zone(std::move(zone));
  server.start();

  const net::NodeId client =
      network.add_node("c", net::find_location("AMS")->point);
  const net::Endpoint cep{network.allocate_address(), 999};
  network.listen(client, cep, [](const net::Datagram&, net::NodeId) {});
  for (int i = 0; i < 5; ++i) {
    network.send(client, cep, net::Endpoint{addr, net::kDnsPort},
                 dns::encode_message(dns::Message::make_query(
                     static_cast<std::uint16_t>(i),
                     dns::Name::parse("q" + std::to_string(i) + ".t.nl"),
                     dns::RRType::TXT)));
  }
  sim.run();

  std::ostringstream out;
  write_trace(out, server.log(), server.identity());
  std::istringstream in{out.str()};
  const auto records = read_trace(in);
  ASSERT_EQ(records.size(), 5u);
  for (const auto& r : records) {
    EXPECT_EQ(r.server, "trace-test");
    EXPECT_EQ(r.client, cep.addr);
    EXPECT_GT(r.at.count_micros(), 0);
  }
}

}  // namespace
}  // namespace recwild::authns
