// Property sweep: randomly generated zones must uphold the RFC 1034
// lookup invariants for every query the engine can face.
#include <gtest/gtest.h>

#include "authns/query_engine.hpp"
#include "stats/rng.hpp"

namespace recwild::authns {
namespace {

struct GeneratedZone {
  Zone zone{dns::Name::parse("ptest.nl")};
  std::vector<dns::Name> owners;       // names with records
  std::vector<dns::Name> delegations;  // cut points
  bool has_wildcard = false;
};

GeneratedZone generate(std::uint64_t seed) {
  stats::Rng rng{seed};
  GeneratedZone g;
  const dns::Name origin = g.zone.origin();

  dns::SoaRdata soa;
  soa.mname = origin.prefixed("ns1");
  soa.rname = origin.prefixed("hostmaster");
  soa.serial = 1;
  soa.minimum = 60;
  g.zone.add({origin, dns::RRClass::IN, 3600, soa});
  g.zone.add({origin, dns::RRClass::IN, 3600,
              dns::NsRdata{origin.prefixed("ns1")}});
  g.zone.add({origin.prefixed("ns1"), dns::RRClass::IN, 3600,
              dns::ARdata{net::IpAddress{1}}});
  g.owners.push_back(origin);
  g.owners.push_back(origin.prefixed("ns1"));

  const std::size_t hosts = 3 + rng.index(20);
  for (std::size_t i = 0; i < hosts; ++i) {
    dns::Name owner = origin.prefixed("h" + std::to_string(i));
    if (rng.chance(0.3)) owner = owner.prefixed("sub");
    switch (rng.index(3)) {
      case 0:
        g.zone.add({owner, dns::RRClass::IN, 300,
                    dns::ARdata{net::IpAddress{
                        static_cast<std::uint32_t>(i + 10)}}});
        break;
      case 1:
        g.zone.add({owner, dns::RRClass::IN, 300,
                    dns::TxtRdata{{"t" + std::to_string(i)}}});
        break;
      default:
        g.zone.add({owner, dns::RRClass::IN, 300,
                    dns::MxRdata{10, origin.prefixed("mail")}});
        break;
    }
    g.owners.push_back(owner);
  }

  if (rng.chance(0.5)) {
    g.zone.add({origin.prefixed("*"), dns::RRClass::IN, 60,
                dns::TxtRdata{{"wild"}}});
    g.has_wildcard = true;
  }

  const std::size_t cuts = rng.index(3);
  for (std::size_t i = 0; i < cuts; ++i) {
    const dns::Name child = origin.prefixed("child" + std::to_string(i));
    g.zone.add({child, dns::RRClass::IN, 3600,
                dns::NsRdata{child.prefixed("ns")}});
    g.zone.add({child.prefixed("ns"), dns::RRClass::IN, 3600,
                dns::ARdata{net::IpAddress{
                    static_cast<std::uint32_t>(100 + i)}}});
    g.delegations.push_back(child);
  }
  return g;
}

class ZoneProperties : public ::testing::TestWithParam<int> {};

TEST_P(ZoneProperties, ZoneValidates) {
  const auto g = generate(static_cast<std::uint64_t>(GetParam()));
  EXPECT_TRUE(g.zone.validate().empty());
}

TEST_P(ZoneProperties, ExistingOwnersNeverNxDomain) {
  const auto g = generate(static_cast<std::uint64_t>(GetParam()));
  const QueryEngine engine{g.zone};
  for (const auto& owner : g.owners) {
    // Skip names under a delegation cut (they refer).
    bool under_cut = false;
    for (const auto& cut : g.delegations) {
      if (owner.is_subdomain_of(cut)) under_cut = true;
    }
    if (under_cut) continue;
    const auto r = engine.lookup(
        dns::Question{owner, dns::RRType::TXT, dns::RRClass::IN});
    EXPECT_NE(r.rcode, dns::Rcode::NxDomain) << owner.to_string();
    EXPECT_TRUE(r.disposition == Disposition::Answer ||
                r.disposition == Disposition::NoData ||
                r.disposition == Disposition::Wildcard)
        << owner.to_string();
  }
}

TEST_P(ZoneProperties, DelegatedNamesAlwaysRefer) {
  const auto g = generate(static_cast<std::uint64_t>(GetParam()));
  const QueryEngine engine{g.zone};
  for (const auto& cut : g.delegations) {
    const auto r = engine.lookup(dns::Question{
        cut.prefixed("below"), dns::RRType::A, dns::RRClass::IN});
    EXPECT_EQ(r.disposition, Disposition::Referral);
    EXPECT_FALSE(r.authoritative);
    EXPECT_FALSE(r.authorities.empty());
    // Referral glue must cover the NS target.
    EXPECT_FALSE(r.additionals.empty());
  }
}

TEST_P(ZoneProperties, UnknownNamesNxDomainOrWildcard) {
  const auto g = generate(static_cast<std::uint64_t>(GetParam()));
  const QueryEngine engine{g.zone};
  stats::Rng rng{static_cast<std::uint64_t>(GetParam()) + 999};
  for (int i = 0; i < 20; ++i) {
    const dns::Name name = g.zone.origin().prefixed(
        "nope" + std::to_string(rng.next() % 100000));
    const auto r = engine.lookup(
        dns::Question{name, dns::RRType::TXT, dns::RRClass::IN});
    if (g.has_wildcard) {
      EXPECT_EQ(r.disposition, Disposition::Wildcard) << name.to_string();
      ASSERT_EQ(r.answers.size(), 1u);
      EXPECT_EQ(r.answers[0].name, name);  // synthesized at the qname
    } else {
      EXPECT_EQ(r.rcode, dns::Rcode::NxDomain) << name.to_string();
      ASSERT_FALSE(r.authorities.empty());
      EXPECT_EQ(r.authorities[0].type(), dns::RRType::SOA);
    }
  }
}

TEST_P(ZoneProperties, LookupNeverThrowsOnAnyType) {
  const auto g = generate(static_cast<std::uint64_t>(GetParam()));
  const QueryEngine engine{g.zone};
  for (const auto type :
       {dns::RRType::A, dns::RRType::NS, dns::RRType::CNAME,
        dns::RRType::SOA, dns::RRType::MX, dns::RRType::TXT,
        dns::RRType::AAAA, dns::RRType::ANY}) {
    for (const auto& owner : g.owners) {
      EXPECT_NO_THROW((void)engine.lookup(
          dns::Question{owner, type, dns::RRClass::IN}));
    }
  }
}

TEST_P(ZoneProperties, AxfrRoundTripsThroughSecondaryPath) {
  // The AXFR payload rebuilt as a zone matches record-for-record.
  const auto g = generate(static_cast<std::uint64_t>(GetParam()));
  const auto all = g.zone.all_records();
  Zone rebuilt{g.zone.origin()};
  for (const auto& rr : all) rebuilt.add(rr);
  EXPECT_EQ(rebuilt.record_count(), g.zone.record_count());
  EXPECT_EQ(rebuilt.rrset_count(), g.zone.rrset_count());
  EXPECT_EQ(rebuilt.soa()->serial, g.zone.soa()->serial);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZoneProperties, ::testing::Range(1, 16));

}  // namespace
}  // namespace recwild::authns
