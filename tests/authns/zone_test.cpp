#include "authns/zone.hpp"

#include <gtest/gtest.h>

namespace recwild::authns {
namespace {

constexpr const char* kZoneText = R"(
$TTL 3600
@       IN SOA ns1 hostmaster 2017041201 14400 3600 1209600 300
@       IN NS  ns1
@       IN NS  ns2
ns1     IN A   192.0.2.1
ns2     IN A   192.0.2.2
www     IN A   192.0.2.80
www     IN A   192.0.2.81
alias   IN CNAME www
*.wild  IN TXT "caught"
child   IN NS  ns1.child
ns1.child IN A 192.0.2.100
a.b.c   IN A   192.0.2.9
)";

Zone make_zone() {
  return Zone::from_text(dns::Name::parse("example.nl"), kZoneText);
}

TEST(Zone, LoadsFromMasterText) {
  const Zone z = make_zone();
  EXPECT_EQ(z.origin(), dns::Name::parse("example.nl"));
  EXPECT_GT(z.rrset_count(), 5u);
  EXPECT_EQ(z.record_count(), 12u);
}

TEST(Zone, FindExactRRset) {
  const Zone z = make_zone();
  const auto* www = z.find(dns::Name::parse("www.example.nl"), dns::RRType::A);
  ASSERT_NE(www, nullptr);
  EXPECT_EQ(www->size(), 2u);
  EXPECT_EQ(www->ttl, 3600u);
}

TEST(Zone, FindMissesWrongType) {
  const Zone z = make_zone();
  EXPECT_EQ(z.find(dns::Name::parse("www.example.nl"), dns::RRType::TXT),
            nullptr);
  EXPECT_EQ(z.find(dns::Name::parse("nope.example.nl"), dns::RRType::A),
            nullptr);
}

TEST(Zone, FindAllReturnsEverythingAtName) {
  const Zone z = make_zone();
  const auto* apex = z.find_all(z.origin());
  ASSERT_NE(apex, nullptr);
  EXPECT_EQ(apex->size(), 2u);  // SOA + NS
}

TEST(Zone, SoaAccessors) {
  const Zone z = make_zone();
  const auto soa = z.soa();
  ASSERT_TRUE(soa.has_value());
  EXPECT_EQ(soa->serial, 2017041201u);
  EXPECT_EQ(z.negative_ttl(), 300u);
}

TEST(Zone, NegativeTtlClampsToSoaRecordTtl) {
  Zone z{dns::Name::parse("x.nl")};
  dns::SoaRdata soa;
  soa.minimum = 9999;
  z.add(dns::ResourceRecord{z.origin(), dns::RRClass::IN, 60, soa});
  EXPECT_EQ(z.negative_ttl(), 60u);
}

TEST(Zone, ApexNs) {
  const Zone z = make_zone();
  const auto* ns = z.apex_ns();
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(ns->size(), 2u);
}

TEST(Zone, RejectsOutOfZoneRecord) {
  Zone z{dns::Name::parse("example.nl")};
  EXPECT_THROW(
      z.add(dns::ResourceRecord{dns::Name::parse("other.org"),
                                dns::RRClass::IN, 60,
                                dns::ARdata{net::IpAddress{1}}}),
      std::invalid_argument);
}

TEST(Zone, RejectsClassMismatch) {
  Zone z{dns::Name::parse("example.nl")};
  EXPECT_THROW(
      z.add(dns::ResourceRecord{z.origin(), dns::RRClass::CH, 60,
                                dns::TxtRdata{{"x"}}}),
      std::invalid_argument);
}

TEST(Zone, NameExistsIncludesEmptyNonTerminals) {
  const Zone z = make_zone();
  EXPECT_TRUE(z.name_exists(dns::Name::parse("www.example.nl")));
  // b.c.example.nl has no records but a.b.c.example.nl exists below it.
  EXPECT_TRUE(z.name_exists(dns::Name::parse("b.c.example.nl")));
  EXPECT_TRUE(z.name_exists(dns::Name::parse("c.example.nl")));
  EXPECT_FALSE(z.name_exists(dns::Name::parse("zzz.example.nl")));
}

TEST(Zone, FindDelegationBelowApex) {
  const Zone z = make_zone();
  const auto* cut =
      z.find_delegation(dns::Name::parse("deep.child.example.nl"));
  ASSERT_NE(cut, nullptr);
  EXPECT_EQ(cut->name, dns::Name::parse("child.example.nl"));
  // The delegation point itself is also under the cut.
  EXPECT_NE(z.find_delegation(dns::Name::parse("child.example.nl")),
            nullptr);
}

TEST(Zone, ApexNsIsNotADelegation) {
  const Zone z = make_zone();
  EXPECT_EQ(z.find_delegation(dns::Name::parse("www.example.nl")), nullptr);
  EXPECT_EQ(z.find_delegation(z.origin()), nullptr);
}

TEST(Zone, WildcardMatchesUncoveredNames) {
  const Zone z = make_zone();
  const auto* wc = z.find_wildcard(
      dns::Name::parse("anything.wild.example.nl"), dns::RRType::TXT);
  ASSERT_NE(wc, nullptr);
  EXPECT_EQ(wc->type, dns::RRType::TXT);
}

TEST(Zone, WildcardDoesNotShadowExistingNames) {
  Zone z{dns::Name::parse("x.nl")};
  dns::SoaRdata soa;
  z.add(dns::ResourceRecord{z.origin(), dns::RRClass::IN, 60, soa});
  z.add(dns::ResourceRecord{dns::Name::parse("*.x.nl"), dns::RRClass::IN, 5,
                            dns::TxtRdata{{"wild"}}});
  z.add(dns::ResourceRecord{dns::Name::parse("real.x.nl"), dns::RRClass::IN,
                            5, dns::ARdata{net::IpAddress{1}}});
  // real.x.nl exists; wildcard must not apply to it (engine checks
  // existence first — find_wildcard is only called for nonexistent names).
  const auto* wc =
      z.find_wildcard(dns::Name::parse("other.x.nl"), dns::RRType::TXT);
  EXPECT_NE(wc, nullptr);
}

TEST(Zone, WildcardWrongTypeGivesNull) {
  const Zone z = make_zone();
  EXPECT_EQ(z.find_wildcard(dns::Name::parse("anything.wild.example.nl"),
                            dns::RRType::A),
            nullptr);
}

TEST(Zone, GlueForReturnsAddresses) {
  const Zone z = make_zone();
  const auto glue = z.glue_for(dns::Name::parse("ns1.example.nl"));
  ASSERT_EQ(glue.size(), 1u);
  EXPECT_EQ(glue[0].type(), dns::RRType::A);
  EXPECT_TRUE(z.glue_for(dns::Name::parse("nobody.example.nl")).empty());
}

TEST(Zone, ValidateAcceptsHealthyZone) {
  EXPECT_TRUE(make_zone().validate().empty());
}

TEST(Zone, ValidateFlagsMissingSoaAndNs) {
  Zone z{dns::Name::parse("x.nl")};
  const auto problems = z.validate();
  ASSERT_EQ(problems.size(), 2u);
  EXPECT_NE(problems[0].find("SOA"), std::string::npos);
  EXPECT_NE(problems[1].find("NS"), std::string::npos);
}

TEST(Zone, ValidateFlagsCnameAndOtherData) {
  Zone z{dns::Name::parse("x.nl")};
  dns::SoaRdata soa;
  z.add(dns::ResourceRecord{z.origin(), dns::RRClass::IN, 60, soa});
  z.add(dns::ResourceRecord{z.origin(), dns::RRClass::IN, 60,
                            dns::NsRdata{dns::Name::parse("ns.x.nl")}});
  z.add(dns::ResourceRecord{dns::Name::parse("bad.x.nl"), dns::RRClass::IN,
                            60, dns::CnameRdata{dns::Name::parse("a.x.nl")}});
  z.add(dns::ResourceRecord{dns::Name::parse("bad.x.nl"), dns::RRClass::IN,
                            60, dns::ARdata{net::IpAddress{1}}});
  const auto problems = z.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("CNAME"), std::string::npos);
}

TEST(Zone, OwnerNamesInCanonicalOrder) {
  const Zone z = make_zone();
  const auto names = z.owner_names();
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1].compare(names[i]), 0);
  }
}

TEST(Zone, MergesRecordsIntoRRsets) {
  Zone z{dns::Name::parse("x.nl")};
  z.add(dns::ResourceRecord{dns::Name::parse("h.x.nl"), dns::RRClass::IN,
                            100, dns::ARdata{net::IpAddress{1}}});
  z.add(dns::ResourceRecord{dns::Name::parse("h.x.nl"), dns::RRClass::IN,
                            50, dns::ARdata{net::IpAddress{2}}});
  const auto* set = z.find(dns::Name::parse("h.x.nl"), dns::RRType::A);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->size(), 2u);
  EXPECT_EQ(set->ttl, 50u);  // min TTL wins
}

}  // namespace
}  // namespace recwild::authns
