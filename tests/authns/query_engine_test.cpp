#include "authns/query_engine.hpp"

#include <gtest/gtest.h>

namespace recwild::authns {
namespace {

constexpr const char* kZoneText = R"(
$TTL 3600
@       IN SOA ns1 hostmaster 1 14400 3600 1209600 120
@       IN NS  ns1
ns1     IN A   192.0.2.1
www     IN A   192.0.2.80
www     IN A   192.0.2.81
www     IN AAAA 2001:db8::80
alias   IN CNAME www
hop1    IN CNAME hop2
hop2    IN CNAME www
out     IN CNAME target.other.org.
*.wild  IN TXT "caught"
wildcn  IN NS ns1
child   IN NS  ns1.child
child   IN NS  ns2.child
ns1.child IN A 192.0.2.100
ns2.child IN A 192.0.2.101
empty.nonterm IN A 192.0.2.9
)";

struct Fixture {
  Zone zone = Zone::from_text(dns::Name::parse("example.nl"), kZoneText);
  QueryEngine engine{zone};

  LookupResult ask(const char* name, dns::RRType type,
                   dns::RRClass rrclass = dns::RRClass::IN) const {
    return engine.lookup(
        dns::Question{dns::Name::parse(name), type, rrclass});
  }
};

TEST(QueryEngine, DirectAnswer) {
  Fixture f;
  const auto r = f.ask("www.example.nl", dns::RRType::A);
  EXPECT_EQ(r.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(r.authoritative);
  EXPECT_EQ(r.disposition, Disposition::Answer);
  EXPECT_EQ(r.answers.size(), 2u);
  EXPECT_TRUE(r.authorities.empty());
}

TEST(QueryEngine, TypeSelectivity) {
  Fixture f;
  const auto r = f.ask("www.example.nl", dns::RRType::AAAA);
  EXPECT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].type(), dns::RRType::AAAA);
}

TEST(QueryEngine, AnyReturnsAllSets) {
  Fixture f;
  const auto r = f.ask("www.example.nl", dns::RRType::ANY);
  EXPECT_EQ(r.answers.size(), 3u);  // 2 A + 1 AAAA
}

TEST(QueryEngine, CnameChaseInZone) {
  Fixture f;
  const auto r = f.ask("alias.example.nl", dns::RRType::A);
  EXPECT_EQ(r.rcode, dns::Rcode::NoError);
  ASSERT_EQ(r.answers.size(), 3u);  // CNAME + 2 A
  EXPECT_EQ(r.answers[0].type(), dns::RRType::CNAME);
  EXPECT_EQ(r.answers[1].type(), dns::RRType::A);
}

TEST(QueryEngine, CnameChainOfTwo) {
  Fixture f;
  const auto r = f.ask("hop1.example.nl", dns::RRType::A);
  ASSERT_EQ(r.answers.size(), 4u);  // 2 CNAMEs + 2 A
}

TEST(QueryEngine, CnameQueryItselfNotChased) {
  Fixture f;
  const auto r = f.ask("alias.example.nl", dns::RRType::CNAME);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].type(), dns::RRType::CNAME);
}

TEST(QueryEngine, CnameToOutsideZoneEndsAnswer) {
  Fixture f;
  const auto r = f.ask("out.example.nl", dns::RRType::A);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].type(), dns::RRType::CNAME);
  EXPECT_EQ(r.rcode, dns::Rcode::NoError);
}

TEST(QueryEngine, NoDataForExistingNameWrongType) {
  Fixture f;
  const auto r = f.ask("www.example.nl", dns::RRType::MX);
  EXPECT_EQ(r.rcode, dns::Rcode::NoError);
  EXPECT_EQ(r.disposition, Disposition::NoData);
  EXPECT_TRUE(r.answers.empty());
  ASSERT_EQ(r.authorities.size(), 1u);
  EXPECT_EQ(r.authorities[0].type(), dns::RRType::SOA);
  EXPECT_EQ(r.authorities[0].ttl, 120u);  // negative TTL from SOA minimum
}

TEST(QueryEngine, NxDomainForMissingName) {
  Fixture f;
  const auto r = f.ask("missing.example.nl", dns::RRType::A);
  EXPECT_EQ(r.rcode, dns::Rcode::NxDomain);
  EXPECT_EQ(r.disposition, Disposition::NxDomain);
  ASSERT_EQ(r.authorities.size(), 1u);
  EXPECT_EQ(r.authorities[0].type(), dns::RRType::SOA);
}

TEST(QueryEngine, EmptyNonTerminalIsNoDataNotNxDomain) {
  Fixture f;
  const auto r = f.ask("nonterm.example.nl", dns::RRType::A);
  EXPECT_EQ(r.rcode, dns::Rcode::NoError);
  EXPECT_EQ(r.disposition, Disposition::NoData);
}

TEST(QueryEngine, WildcardSynthesizesAtQueryName) {
  Fixture f;
  const auto r = f.ask("some.random.wild.example.nl", dns::RRType::TXT);
  EXPECT_EQ(r.rcode, dns::Rcode::NoError);
  EXPECT_EQ(r.disposition, Disposition::Wildcard);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].name,
            dns::Name::parse("some.random.wild.example.nl"));
  EXPECT_EQ(r.answers[0].type(), dns::RRType::TXT);
}

TEST(QueryEngine, WildcardWrongTypeIsNxDomain) {
  Fixture f;
  const auto r = f.ask("some.wild.example.nl", dns::RRType::A);
  EXPECT_EQ(r.rcode, dns::Rcode::NxDomain);
}

TEST(QueryEngine, ReferralForDelegatedName) {
  Fixture f;
  const auto r = f.ask("deep.child.example.nl", dns::RRType::A);
  EXPECT_EQ(r.rcode, dns::Rcode::NoError);
  EXPECT_EQ(r.disposition, Disposition::Referral);
  EXPECT_FALSE(r.authoritative);
  EXPECT_TRUE(r.answers.empty());
  EXPECT_EQ(r.authorities.size(), 2u);  // two NS records
  EXPECT_EQ(r.additionals.size(), 2u);  // glue for both
  for (const auto& rr : r.authorities) {
    EXPECT_EQ(rr.type(), dns::RRType::NS);
    EXPECT_EQ(rr.name, dns::Name::parse("child.example.nl"));
  }
}

TEST(QueryEngine, DelegationPointItselfIsReferred) {
  Fixture f;
  const auto r = f.ask("child.example.nl", dns::RRType::A);
  EXPECT_EQ(r.disposition, Disposition::Referral);
}

TEST(QueryEngine, ApexNsIsAuthoritativeAnswerWithGlue) {
  Fixture f;
  const auto r = f.ask("example.nl", dns::RRType::NS);
  EXPECT_EQ(r.disposition, Disposition::Answer);
  EXPECT_TRUE(r.authoritative);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.additionals.size(), 1u);  // ns1 glue
}

TEST(QueryEngine, SoaQueryAnswered) {
  Fixture f;
  const auto r = f.ask("example.nl", dns::RRType::SOA);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].type(), dns::RRType::SOA);
}

TEST(QueryEngine, OutOfZoneRefused) {
  Fixture f;
  const auto r = f.ask("www.other.org", dns::RRType::A);
  EXPECT_EQ(r.rcode, dns::Rcode::Refused);
  EXPECT_EQ(r.disposition, Disposition::NotAuth);
  EXPECT_FALSE(r.authoritative);
}

TEST(QueryEngine, WrongClassRefused) {
  Fixture f;
  const auto r = f.ask("www.example.nl", dns::RRType::TXT, dns::RRClass::CH);
  EXPECT_EQ(r.rcode, dns::Rcode::Refused);
}

}  // namespace
}  // namespace recwild::authns
