// Primary/secondary zone propagation: SOA refresh, AXFR over the stream
// transport, NOTIFY fan-out, serial gating and failure retry.
#include "authns/secondary.hpp"

#include <gtest/gtest.h>

namespace recwild::authns {
namespace {

Zone make_zone(std::uint32_t serial, const char* payload) {
  Zone z{dns::Name::parse("example.nl")};
  dns::SoaRdata soa;
  soa.mname = dns::Name::parse("ns1.example.nl");
  soa.rname = dns::Name::parse("hostmaster.example.nl");
  soa.serial = serial;
  soa.refresh = 3600;
  soa.retry = 600;
  soa.expire = 1209600;
  soa.minimum = 300;
  z.add({z.origin(), dns::RRClass::IN, 3600, soa});
  z.add({z.origin(), dns::RRClass::IN, 3600,
         dns::NsRdata{dns::Name::parse("ns1.example.nl")}});
  z.add({dns::Name::parse("ns1.example.nl"), dns::RRClass::IN, 3600,
         dns::ARdata{net::IpAddress{0x01020304}}});
  z.add({dns::Name::parse("www.example.nl"), dns::RRClass::IN, 300,
         dns::TxtRdata{{payload}}});
  return z;
}

struct World {
  net::Simulation sim{606};
  net::LatencyParams params;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<AuthServer> primary;
  std::unique_ptr<AuthServer> secondary_server;
  std::unique_ptr<SecondaryZone> secondary;

  World() {
    params.loss_rate = 0;
    net_ = std::make_unique<net::Network>(sim, params);
    const auto loc = [](const char* c) {
      return net::find_location(c)->point;
    };
    AuthServerConfig pcfg;
    pcfg.identity = "primary";
    primary = std::make_unique<AuthServer>(
        *net_, net_->add_node("primary", loc("AMS")),
        net::Endpoint{net_->allocate_address(), net::kDnsPort}, pcfg);
    primary->add_zone(make_zone(1, "v1"));
    primary->start();

    AuthServerConfig scfg;
    scfg.identity = "secondary";
    secondary_server = std::make_unique<AuthServer>(
        *net_, net_->add_node("secondary", loc("FRA")),
        net::Endpoint{net_->allocate_address(), net::kDnsPort}, scfg);
    secondary_server->start();

    SecondaryConfig xcfg;
    xcfg.refresh_override = net::Duration::minutes(10);
    secondary = std::make_unique<SecondaryZone>(
        *net_, *secondary_server, dns::Name::parse("example.nl"),
        primary->endpoint(), xcfg, stats::Rng{12});
  }

  /// What the secondary currently answers for www TXT.
  std::string serve_www() {
    const auto resp = secondary_server->answer(dns::Message::make_query(
        1, dns::Name::parse("www.example.nl"), dns::RRType::TXT));
    if (resp.answers.empty()) return "";
    return std::get<dns::TxtRdata>(resp.answers[0].rdata).strings.at(0);
  }
};

TEST(Secondary, InitialTransferPopulatesZone) {
  World w;
  EXPECT_FALSE(w.secondary->has_zone());
  w.secondary->start();
  w.sim.run_until(w.sim.now() + net::Duration::seconds(30));
  EXPECT_TRUE(w.secondary->has_zone());
  EXPECT_EQ(w.secondary->serial(), 1u);
  EXPECT_EQ(w.secondary->transfers(), 1u);
  EXPECT_EQ(w.serve_www(), "v1");
}

TEST(Secondary, RefreshWithoutChangeSkipsTransfer) {
  World w;
  w.secondary->start();
  // Run past several refresh intervals.
  w.sim.run_until(w.sim.now() + net::Duration::minutes(35));
  EXPECT_GE(w.secondary->soa_checks(), 3u);
  EXPECT_EQ(w.secondary->transfers(), 1u);  // serial never moved
}

TEST(Secondary, SerialBumpTriggersTransferOnRefresh) {
  World w;
  w.secondary->start();
  w.sim.run_until(w.sim.now() + net::Duration::seconds(30));
  // Update the primary quietly (no NOTIFY targets registered).
  w.primary->replace_zone(make_zone(2, "v2"));
  EXPECT_EQ(w.serve_www(), "v1");  // not yet propagated
  w.sim.run_until(w.sim.now() + net::Duration::minutes(11));
  EXPECT_EQ(w.secondary->serial(), 2u);
  EXPECT_EQ(w.serve_www(), "v2");
}

TEST(Secondary, NotifyPropagatesAlmostImmediately) {
  World w;
  // NOTIFY goes to the secondary's port 53, like real primaries do.
  w.primary->add_notify_target(dns::Name::parse("example.nl"),
                               w.secondary_server->endpoint());
  w.secondary->start();
  w.sim.run_until(w.sim.now() + net::Duration::seconds(30));

  w.primary->replace_zone(make_zone(5, "v5"));  // sends NOTIFY
  w.sim.run_until(w.sim.now() + net::Duration::seconds(10));
  EXPECT_EQ(w.secondary->serial(), 5u);
  EXPECT_EQ(w.serve_www(), "v5");
  EXPECT_EQ(w.secondary->transfers(), 2u);
}

TEST(Secondary, SerialArithmeticWrapsCorrectly) {
  World w;
  w.primary->replace_zone(make_zone(0xfffffff0u, "old"));
  w.secondary->start();
  w.sim.run_until(w.sim.now() + net::Duration::seconds(30));
  EXPECT_EQ(w.secondary->serial(), 0xfffffff0u);
  // Wrap past zero: 0x10 is "newer" than 0xfffffff0 in RFC 1982 terms.
  w.primary->replace_zone(make_zone(0x10, "new"));
  w.sim.run_until(w.sim.now() + net::Duration::minutes(11));
  EXPECT_EQ(w.secondary->serial(), 0x10u);
  EXPECT_EQ(w.serve_www(), "new");
}

TEST(Secondary, PrimaryDownRetriesAndRecovers) {
  World w;
  SecondaryConfig xcfg;
  xcfg.refresh_override = net::Duration::minutes(10);
  xcfg.retry_override = net::Duration::seconds(30);
  xcfg.query_timeout = net::Duration::seconds(2);
  w.secondary = std::make_unique<SecondaryZone>(
      *w.net_, *w.secondary_server, dns::Name::parse("example.nl"),
      w.primary->endpoint(), xcfg, stats::Rng{13});
  w.primary->set_down(true);
  w.secondary->start();
  w.sim.run_until(w.sim.now() + net::Duration::minutes(2));
  EXPECT_FALSE(w.secondary->has_zone());
  EXPECT_GE(w.secondary->failures(), 2u);

  w.primary->set_down(false);
  w.sim.run_until(w.sim.now() + net::Duration::minutes(2));
  EXPECT_TRUE(w.secondary->has_zone());
  EXPECT_EQ(w.serve_www(), "v1");
}

TEST(Secondary, OnTransferredCallbackFires) {
  World w;
  std::vector<std::uint32_t> serials;
  w.secondary->on_transferred = [&](std::uint32_t s) {
    serials.push_back(s);
  };
  w.secondary->start();
  w.sim.run_until(w.sim.now() + net::Duration::seconds(30));
  ASSERT_EQ(serials.size(), 1u);
  EXPECT_EQ(serials[0], 1u);
}

TEST(Secondary, TeardownWithInflightSoaCheckIsClean) {
  World w;
  // start() sends the initial SOA check synchronously and arms its
  // query-timeout event. Destroy the SecondaryZone while both are live:
  // the destructor must cancel the timeout (it used to leak, firing into
  // a dead object) and the world must still drain.
  w.secondary->start();
  w.secondary.reset();
  w.sim.run();
  EXPECT_EQ(w.sim.pending(), 0u);
}

TEST(Secondary, StopCancelsARunningRefreshLoop) {
  World w;
  w.secondary->start();
  w.sim.run_until(w.sim.now() + net::Duration::seconds(30));
  ASSERT_TRUE(w.secondary->has_zone());
  w.secondary->stop();
  // Neither the refresh timer nor a query timeout survives stop().
  w.sim.run();
  EXPECT_EQ(w.sim.pending(), 0u);
}

TEST(Secondary, NotifyAfterStopDoesNotRearmTheLoop) {
  World w;
  w.primary->add_notify_target(dns::Name::parse("example.nl"),
                               w.secondary_server->endpoint());
  w.secondary->start();
  w.sim.run_until(w.sim.now() + net::Duration::seconds(30));
  ASSERT_EQ(w.secondary->serial(), 1u);
  w.secondary->stop();
  const auto checks = w.secondary->soa_checks();

  w.primary->replace_zone(make_zone(9, "v9"));  // sends NOTIFY
  w.sim.run();
  EXPECT_EQ(w.secondary->soa_checks(), checks);  // nothing re-armed
  EXPECT_EQ(w.secondary->serial(), 1u);
  EXPECT_EQ(w.sim.pending(), 0u);
}

TEST(Axfr, OverUdpIsTruncated) {
  World w;
  const auto resp = w.primary->answer(
      dns::Message::make_query(9, dns::Name::parse("example.nl"),
                               dns::RRType::AXFR),
      /*via_stream=*/false);
  EXPECT_TRUE(resp.header.tc);
  EXPECT_TRUE(resp.answers.empty());
}

TEST(Axfr, OverStreamReturnsFullZoneSoaBracketed) {
  World w;
  const auto resp = w.primary->answer(
      dns::Message::make_query(9, dns::Name::parse("example.nl"),
                               dns::RRType::AXFR),
      /*via_stream=*/true);
  EXPECT_EQ(resp.header.rcode, dns::Rcode::NoError);
  ASSERT_GE(resp.answers.size(), 4u);
  EXPECT_EQ(resp.answers.front().type(), dns::RRType::SOA);
  EXPECT_EQ(resp.answers.back().type(), dns::RRType::SOA);
}

TEST(Axfr, UnknownZoneRefused) {
  World w;
  const auto resp = w.primary->answer(
      dns::Message::make_query(9, dns::Name::parse("other.org"),
                               dns::RRType::AXFR),
      /*via_stream=*/true);
  EXPECT_EQ(resp.header.rcode, dns::Rcode::Refused);
}

}  // namespace
}  // namespace recwild::authns
