#include "net/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace recwild::net {
namespace {

TEST(SimTime, ArithmeticAndComparison) {
  const SimTime t0 = SimTime::origin();
  const SimTime t1 = t0 + Duration::millis(5);
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - t0).ms(), 5.0);
  EXPECT_EQ((t1 - Duration::millis(5)), t0);
}

TEST(Duration, Conversions) {
  EXPECT_EQ(Duration::seconds(1).count_micros(), 1'000'000);
  EXPECT_EQ(Duration::minutes(2).sec(), 120.0);
  EXPECT_EQ(Duration::hours(1).count_micros(), 3'600'000'000LL);
  EXPECT_DOUBLE_EQ(Duration::millis(1.5).ms(), 1.5);
}

TEST(Duration, ScalarMultiply) {
  EXPECT_EQ((Duration::millis(10) * 2.5).ms(), 25.0);
}

TEST(Simulation, ClockStartsAtOrigin) {
  Simulation sim;
  EXPECT_EQ(sim.now(), SimTime::origin());
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation sim;
  SimTime observed;
  sim.after(Duration::millis(10), [&] { observed = sim.now(); });
  sim.run();
  EXPECT_EQ(observed.ms(), 10.0);
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation sim;
  bool fired = false;
  sim.after(Duration::millis(-5), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), SimTime::origin());
}

TEST(Simulation, NestedScheduling) {
  Simulation sim;
  std::vector<double> times;
  sim.after(Duration::millis(1), [&] {
    times.push_back(sim.now().ms());
    sim.after(Duration::millis(2), [&] { times.push_back(sim.now().ms()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  sim.after(Duration::millis(5), [&] { ++fired; });
  sim.after(Duration::millis(15), [&] { ++fired; });
  sim.run_until(SimTime::origin() + Duration::millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().ms(), 10.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunUntilIncludesBoundaryEvents) {
  Simulation sim;
  bool fired = false;
  sim.after(Duration::millis(10), [&] { fired = true; });
  sim.run_until(SimTime::origin() + Duration::millis(10));
  EXPECT_TRUE(fired);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.after(Duration::millis(1), [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, StepsCountEvents) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.after(Duration::millis(i), [] {});
  sim.run();
  EXPECT_EQ(sim.steps(), 5u);
}

TEST(Simulation, RngIsSeedDeterministic) {
  Simulation a{99};
  Simulation b{99};
  EXPECT_EQ(a.rng().next(), b.rng().next());
}

}  // namespace
}  // namespace recwild::net
