#include "net/geo.hpp"

#include <gtest/gtest.h>

namespace recwild::net {
namespace {

TEST(GreatCircle, ZeroForSamePoint) {
  const GeoPoint p{52.0, 4.0};
  EXPECT_DOUBLE_EQ(great_circle_km(p, p), 0.0);
}

TEST(GreatCircle, Symmetric) {
  const GeoPoint a{52.37, 4.90};
  const GeoPoint b{-33.87, 151.21};
  EXPECT_DOUBLE_EQ(great_circle_km(a, b), great_circle_km(b, a));
}

TEST(GreatCircle, KnownDistanceAmsterdamFrankfurt) {
  const auto ams = find_location("AMS");
  const auto fra = find_location("FRA");
  ASSERT_TRUE(ams && fra);
  const double d = great_circle_km(ams->point, fra->point);
  EXPECT_GT(d, 300.0);
  EXPECT_LT(d, 420.0);  // ~360 km
}

TEST(GreatCircle, KnownDistanceFrankfurtSydney) {
  const auto fra = find_location("FRA");
  const auto syd = find_location("SYD");
  ASSERT_TRUE(fra && syd);
  const double d = great_circle_km(fra->point, syd->point);
  EXPECT_GT(d, 16'000.0);
  EXPECT_LT(d, 17'000.0);  // ~16,500 km
}

TEST(GreatCircle, AntipodalNearHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(great_circle_km(a, b), 20'015.0, 50.0);
}

TEST(GreatCircle, TriangleInequalityHolds) {
  const auto fra = find_location("FRA")->point;
  const auto iad = find_location("IAD")->point;
  const auto syd = find_location("SYD")->point;
  EXPECT_LE(great_circle_km(fra, syd),
            great_circle_km(fra, iad) + great_circle_km(iad, syd) + 1e-6);
}

TEST(Locations, PaperDatacentersExist) {
  for (const char* code : {"GRU", "NRT", "DUB", "FRA", "SYD", "IAD", "SFO"}) {
    EXPECT_TRUE(find_location(code).has_value()) << code;
  }
}

TEST(Locations, UnknownCodeIsNullopt) {
  EXPECT_FALSE(find_location("XXX").has_value());
  EXPECT_FALSE(find_location("").has_value());
}

TEST(Locations, ContinentsAreCorrect) {
  EXPECT_EQ(find_location("FRA")->continent, Continent::Europe);
  EXPECT_EQ(find_location("GRU")->continent, Continent::SouthAmerica);
  EXPECT_EQ(find_location("NRT")->continent, Continent::Asia);
  EXPECT_EQ(find_location("SYD")->continent, Continent::Oceania);
  EXPECT_EQ(find_location("IAD")->continent, Continent::NorthAmerica);
  EXPECT_EQ(find_location("JNB")->continent, Continent::Africa);
}

TEST(Locations, CatalogIsSortedByCode) {
  const auto catalog = location_catalog();
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].code, catalog[i].code);
  }
}

TEST(Locations, EveryContinentHasCities) {
  for (const Continent c : all_continents()) {
    EXPECT_GE(locations_on(c).size(), 4u) << continent_name(c);
  }
}

TEST(Continent, CodesRoundTrip) {
  for (const Continent c : all_continents()) {
    const auto back = continent_from_code(continent_code(c));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
}

TEST(Continent, PaperTableOrder) {
  const auto all = all_continents();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(continent_code(all[0]), "AF");
  EXPECT_EQ(continent_code(all[1]), "AS");
  EXPECT_EQ(continent_code(all[2]), "EU");
  EXPECT_EQ(continent_code(all[3]), "NA");
  EXPECT_EQ(continent_code(all[4]), "OC");
  EXPECT_EQ(continent_code(all[5]), "SA");
}

TEST(Continent, UnknownCodeRejected) {
  EXPECT_FALSE(continent_from_code("XX").has_value());
  EXPECT_FALSE(continent_from_code("eu").has_value());
}

}  // namespace
}  // namespace recwild::net
