#include "net/network.hpp"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "obs/names.hpp"

namespace recwild::net {
namespace {

GeoPoint point(const char* code) { return find_location(code)->point; }

struct Fixture {
  Simulation sim{123};
  LatencyParams params;
  Fixture() { params.loss_rate = 0.0; }
};

TEST(Network, AddNodeAssignsSequentialIds) {
  Fixture f;
  Network net{f.sim, f.params};
  EXPECT_EQ(net.add_node("a", point("FRA")), 0u);
  EXPECT_EQ(net.add_node("b", point("IAD")), 1u);
  EXPECT_EQ(net.node_count(), 2u);
  EXPECT_EQ(net.node(0).name, "a");
  EXPECT_THROW(net.node(5), std::out_of_range);
}

TEST(Network, AllocateAddressIsUnique) {
  Fixture f;
  Network net{f.sim, f.params};
  const auto a = net.allocate_address();
  const auto b = net.allocate_address();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.to_string().substr(0, 3), "10.");
}

TEST(Network, DeliversDatagramWithLatency) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId sender = net.add_node("sender", point("FRA"));
  const NodeId receiver = net.add_node("receiver", point("IAD"));
  const Endpoint dst{net.allocate_address(), 53};

  bool delivered = false;
  SimTime at;
  net.listen(receiver, dst, [&](const Datagram& d, NodeId node) {
    delivered = true;
    at = f.sim.now();
    EXPECT_EQ(node, receiver);
    EXPECT_EQ(d.payload.size(), 3u);
    EXPECT_EQ(d.sent_at, SimTime::origin());
  });

  EXPECT_TRUE(net.send(sender, Endpoint{net.allocate_address(), 1000}, dst,
                       {1, 2, 3}));
  f.sim.run();
  EXPECT_TRUE(delivered);
  // One-way FRA->IAD should be tens of ms.
  EXPECT_GT(at.ms(), 10.0);
  EXPECT_LT(at.ms(), 300.0);
}

TEST(Network, UnroutableReturnsFalse) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId sender = net.add_node("sender", point("FRA"));
  EXPECT_FALSE(net.send(sender, Endpoint{}, Endpoint{IpAddress{42}, 53}, {}));
  EXPECT_EQ(net.unroutable(), 1u);
}

TEST(Network, UnlistenMakesUnroutable) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId a = net.add_node("a", point("FRA"));
  const NodeId b = net.add_node("b", point("IAD"));
  const Endpoint ep{net.allocate_address(), 53};
  net.listen(b, ep, [](const Datagram&, NodeId) {});
  EXPECT_TRUE(net.send(a, Endpoint{}, ep, {}));
  net.unlisten(b, ep);
  EXPECT_FALSE(net.send(a, Endpoint{}, ep, {}));
}

TEST(Network, RebindReplacesHandler) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId a = net.add_node("a", point("FRA"));
  const NodeId b = net.add_node("b", point("AMS"));
  const Endpoint ep{net.allocate_address(), 53};
  int first = 0;
  int second = 0;
  net.listen(b, ep, [&](const Datagram&, NodeId) { ++first; });
  net.listen(b, ep, [&](const Datagram&, NodeId) { ++second; });
  net.send(a, Endpoint{}, ep, {});
  f.sim.run();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(Network, FullLossDropsEverything) {
  Fixture f;
  f.params.loss_rate = 1.0;
  Network net{f.sim, f.params};
  const NodeId a = net.add_node("a", point("FRA"));
  const NodeId b = net.add_node("b", point("AMS"));
  const Endpoint ep{net.allocate_address(), 53};
  bool delivered = false;
  net.listen(b, ep, [&](const Datagram&, NodeId) { delivered = true; });
  EXPECT_TRUE(net.send(a, Endpoint{}, ep, {9}));  // sent, then lost
  f.sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped(), 1u);
  EXPECT_EQ(net.delivered(), 0u);
}

TEST(Network, AnycastRoutesToNearestSite) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId client_eu = net.add_node("client-eu", point("AMS"));
  const NodeId client_au = net.add_node("client-au", point("MEL"));
  const NodeId site_eu = net.add_node("site-eu", point("FRA"));
  const NodeId site_au = net.add_node("site-au", point("SYD"));
  const Endpoint anycast{net.allocate_address(), 53};

  NodeId hit = kInvalidNode;
  auto handler = [&](const Datagram&, NodeId node) { hit = node; };
  net.listen(site_eu, anycast, handler);
  net.listen(site_au, anycast, handler);

  net.send(client_eu, Endpoint{}, anycast, {});
  f.sim.run();
  EXPECT_EQ(hit, site_eu);

  net.send(client_au, Endpoint{}, anycast, {});
  f.sim.run();
  EXPECT_EQ(hit, site_au);
}

TEST(Network, RouteReportsCatchment) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId client = net.add_node("client", point("AMS"));
  const NodeId site_eu = net.add_node("site-eu", point("FRA"));
  const NodeId site_us = net.add_node("site-us", point("SFO"));
  const IpAddress addr = net.allocate_address();
  auto handler = [](const Datagram&, NodeId) {};
  net.listen(site_eu, Endpoint{addr, 53}, handler);
  net.listen(site_us, Endpoint{addr, 53}, handler);
  EXPECT_EQ(net.route(client, addr), site_eu);
  EXPECT_EQ(net.route(client, IpAddress{777}), kInvalidNode);
}

TEST(Network, BoundNodesListsAllSites) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId s1 = net.add_node("s1", point("FRA"));
  const NodeId s2 = net.add_node("s2", point("SYD"));
  const IpAddress addr = net.allocate_address();
  auto handler = [](const Datagram&, NodeId) {};
  net.listen(s1, Endpoint{addr, 53}, handler);
  net.listen(s2, Endpoint{addr, 53}, handler);
  const auto nodes = net.bound_nodes(addr);
  EXPECT_EQ(nodes.size(), 2u);
}

TEST(Network, BaseRttToUsesCatchment) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId client = net.add_node("client", point("AMS"));
  const NodeId near_site = net.add_node("near", point("FRA"));
  const NodeId far_site = net.add_node("far", point("SYD"));
  const IpAddress addr = net.allocate_address();
  auto handler = [](const Datagram&, NodeId) {};
  net.listen(near_site, Endpoint{addr, 53}, handler);
  net.listen(far_site, Endpoint{addr, 53}, handler);
  const Duration rtt = net.base_rtt_to(client, addr);
  EXPECT_EQ(rtt, net.base_rtt(client, near_site));
  EXPECT_LT(rtt, net.base_rtt(client, far_site));
}

/// Scriptable routing-plane hook: a fixed per-node state table.
struct StubRouteHook final : RoutePolicyHook {
  IpAddress managed;
  std::map<NodeId, RouteState> states;
  std::vector<NodeId> selections;

  RouteState route_state(IpAddress addr, NodeId node, SimTime) override {
    if (addr != managed) return RouteState::Announced;
    const auto it = states.find(node);
    return it == states.end() ? RouteState::Announced : it->second;
  }
  void on_selected(IpAddress addr, NodeId, NodeId site, SimTime) override {
    if (addr == managed) selections.push_back(site);
  }
};

TEST(Network, WithdrawnSiteLeavesSelection) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId client = net.add_node("client", point("AMS"));
  const NodeId near_site = net.add_node("near", point("FRA"));
  const NodeId far_site = net.add_node("far", point("SYD"));
  const IpAddress addr = net.allocate_address();
  NodeId hit = kInvalidNode;
  auto handler = [&](const Datagram&, NodeId node) { hit = node; };
  net.listen(near_site, Endpoint{addr, 53}, handler);
  net.listen(far_site, Endpoint{addr, 53}, handler);

  StubRouteHook hook;
  hook.managed = addr;
  hook.states[near_site] = RouteState::Withdrawn;
  net.add_route_hook(&hook);

  EXPECT_TRUE(net.send(client, Endpoint{}, Endpoint{addr, 53}, {}));
  f.sim.run();
  EXPECT_EQ(hit, far_site);  // nearest site withdrawn -> next best
  ASSERT_EQ(hook.selections.size(), 1u);
  EXPECT_EQ(hook.selections[0], far_site);
  net.remove_route_hook(&hook);
}

TEST(Network, SinkingSiteStillAttractsAndDrops) {
  // Withdrawn-but-unconverged: the sender still selects the dead site and
  // the packet dies there — the convergence-loss phase of a withdrawal.
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId client = net.add_node("client", point("AMS"));
  const NodeId near_site = net.add_node("near", point("FRA"));
  const NodeId far_site = net.add_node("far", point("SYD"));
  const IpAddress addr = net.allocate_address();
  bool delivered = false;
  auto handler = [&](const Datagram&, NodeId) { delivered = true; };
  net.listen(near_site, Endpoint{addr, 53}, handler);
  net.listen(far_site, Endpoint{addr, 53}, handler);

  StubRouteHook hook;
  hook.managed = addr;
  hook.states[near_site] = RouteState::Sinking;
  net.add_route_hook(&hook);

  EXPECT_TRUE(net.send(client, Endpoint{}, Endpoint{addr, 53}, {7}));
  f.sim.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.dropped(), 1u);
  EXPECT_EQ(f.sim.metrics().snapshot().counter_value(
                obs::names::kAnycastLostInConvergence),
            1u);
  // The dead site was still the selection — convergence hasn't reached
  // the client's routers.
  ASSERT_EQ(hook.selections.size(), 1u);
  EXPECT_EQ(hook.selections[0], near_site);
  net.remove_route_hook(&hook);
}

TEST(Network, AllSitesWithdrawnIsUnroutable) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId client = net.add_node("client", point("AMS"));
  const NodeId site = net.add_node("site", point("FRA"));
  const IpAddress addr = net.allocate_address();
  net.listen(site, Endpoint{addr, 53}, [](const Datagram&, NodeId) {});

  StubRouteHook hook;
  hook.managed = addr;
  hook.states[site] = RouteState::Withdrawn;
  net.add_route_hook(&hook);
  EXPECT_FALSE(net.send(client, Endpoint{}, Endpoint{addr, 53}, {}));
  EXPECT_EQ(net.unroutable(), 1u);
  net.remove_route_hook(&hook);
}

TEST(Network, WorstRouteStateAcrossHooksWins) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId client = net.add_node("client", point("AMS"));
  const NodeId site = net.add_node("site", point("FRA"));
  const NodeId backup = net.add_node("backup", point("IAD"));
  const IpAddress addr = net.allocate_address();
  NodeId hit = kInvalidNode;
  auto handler = [&](const Datagram&, NodeId node) { hit = node; };
  net.listen(site, Endpoint{addr, 53}, handler);
  net.listen(backup, Endpoint{addr, 53}, handler);

  StubRouteHook says_ok;
  says_ok.managed = addr;  // all Announced
  StubRouteHook says_gone;
  says_gone.managed = addr;
  says_gone.states[site] = RouteState::Withdrawn;
  net.add_route_hook(&says_ok);
  net.add_route_hook(&says_gone);

  EXPECT_TRUE(net.send(client, Endpoint{}, Endpoint{addr, 53}, {}));
  f.sim.run();
  EXPECT_EQ(hit, backup);
  net.remove_route_hook(&says_ok);
  net.remove_route_hook(&says_gone);
}

TEST(Network, EqualRttTieBreaksOnLowestNodeName) {
  // Two sites at the same location (bit-identical RTT): selection must be
  // deterministic — lowest node name wins, regardless of bind order.
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId client = net.add_node("client", point("AMS"));
  const NodeId z_site = net.add_node("site-z", point("FRA"));
  const NodeId a_site = net.add_node("site-a", point("FRA"));
  const IpAddress addr = net.allocate_address();
  NodeId hit = kInvalidNode;
  auto handler = [&](const Datagram&, NodeId node) { hit = node; };
  net.listen(z_site, Endpoint{addr, 53}, handler);  // bound first
  net.listen(a_site, Endpoint{addr, 53}, handler);

  net.send(client, Endpoint{}, Endpoint{addr, 53}, {});
  f.sim.run();
  EXPECT_EQ(hit, a_site);
}

TEST(Network, CountersTrackTraffic) {
  Fixture f;
  Network net{f.sim, f.params};
  const NodeId a = net.add_node("a", point("FRA"));
  const NodeId b = net.add_node("b", point("AMS"));
  const Endpoint ep{net.allocate_address(), 53};
  net.listen(b, ep, [](const Datagram&, NodeId) {});
  net.send(a, Endpoint{}, ep, {});
  net.send(a, Endpoint{}, ep, {});
  f.sim.run();
  EXPECT_EQ(net.sent(), 2u);
  EXPECT_EQ(net.delivered(), 2u);
}

TEST(Address, ToStringFormatsOctets) {
  EXPECT_EQ(IpAddress::from_octets(10, 0, 1, 2).to_string(), "10.0.1.2");
  EXPECT_EQ(IpAddress::from_octets(255, 255, 255, 255).to_string(),
            "255.255.255.255");
  const Endpoint ep{IpAddress::from_octets(1, 2, 3, 4), 53};
  EXPECT_EQ(ep.to_string(), "1.2.3.4:53");
}

TEST(Address, ComparisonAndHash) {
  const IpAddress a{1};
  const IpAddress b{2};
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<IpAddress>{}(a), std::hash<IpAddress>{}(b));
  EXPECT_TRUE(IpAddress{}.is_unspecified());
  EXPECT_FALSE(a.is_unspecified());
}

}  // namespace
}  // namespace recwild::net
