#include "net/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace recwild::net {
namespace {

SimTime at_ms(double ms) {
  return SimTime::origin() + Duration::millis(ms);
}

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(at_ms(30), [&] { order.push_back(3); });
  q.push(at_ms(10), [&] { order.push_back(1); });
  q.push(at_ms(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(at_ms(5), [&] { order.push_back(1); });
  q.push(at_ms(5), [&] { order.push_back(2); });
  q.push(at_ms(5), [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PopReportsFireTime) {
  EventQueue q;
  q.push(at_ms(42), [] {});
  const auto fired = q.pop();
  EXPECT_EQ(fired.at, at_ms(42));
}

TEST(EventQueue, NextTimeIsEarliest) {
  EventQueue q;
  q.push(at_ms(9), [] {});
  q.push(at_ms(3), [] {});
  EXPECT_EQ(q.next_time(), at_ms(3));
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(at_ms(1), [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelledEventSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  const EventId id = q.push(at_ms(1), [&] { order.push_back(1); });
  q.push(at_ms(2), [&] { order.push_back(2); });
  q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.push(at_ms(1), [] {});
  q.cancel(id);
  q.cancel(id);  // no effect, no crash
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  const EventId id = q.push(at_ms(1), [] {});
  q.pop().fn();
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelledFront) {
  EventQueue q;
  const EventId early = q.push(at_ms(1), [] {});
  q.push(at_ms(7), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), at_ms(7));
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  const EventId a = q.push(at_ms(1), [] {});
  q.push(at_ms(2), [] {});
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<double> fire_times;
  for (int i = 999; i >= 0; --i) {
    q.push(at_ms(i % 100), [] {});
  }
  while (!q.empty()) fire_times.push_back(q.pop().at.ms());
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_LE(fire_times[i - 1], fire_times[i]);
  }
}

}  // namespace
}  // namespace recwild::net
