#include "net/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace recwild::net {
namespace {

SimTime at_ms(double ms) {
  return SimTime::origin() + Duration::millis(ms);
}

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(at_ms(30), [&] { order.push_back(3); });
  q.push(at_ms(10), [&] { order.push_back(1); });
  q.push(at_ms(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(at_ms(5), [&] { order.push_back(1); });
  q.push(at_ms(5), [&] { order.push_back(2); });
  q.push(at_ms(5), [&] { order.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, PopReportsFireTime) {
  EventQueue q;
  q.push(at_ms(42), [] {});
  const auto fired = q.pop();
  EXPECT_EQ(fired.at, at_ms(42));
}

TEST(EventQueue, NextTimeIsEarliest) {
  EventQueue q;
  q.push(at_ms(9), [] {});
  q.push(at_ms(3), [] {});
  EXPECT_EQ(q.next_time(), at_ms(3));
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(at_ms(1), [&] { fired = true; });
  q.cancel(id);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelledEventSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  const EventId id = q.push(at_ms(1), [&] { order.push_back(1); });
  q.push(at_ms(2), [&] { order.push_back(2); });
  q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventId id = q.push(at_ms(1), [] {});
  q.cancel(id);
  q.cancel(id);  // no effect, no crash
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  EventQueue q;
  const EventId id = q.push(at_ms(1), [] {});
  q.pop().fn();
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelledFront) {
  EventQueue q;
  const EventId early = q.push(at_ms(1), [] {});
  q.push(at_ms(7), [] {});
  q.cancel(early);
  EXPECT_EQ(q.next_time(), at_ms(7));
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  const EventId a = q.push(at_ms(1), [] {});
  q.push(at_ms(2), [] {});
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelHeadThenPopSkipsToNextLive) {
  EventQueue q;
  std::vector<int> order;
  const EventId head = q.push(at_ms(1), [&] { order.push_back(1); });
  q.push(at_ms(2), [&] { order.push_back(2); });
  q.cancel(head);
  EXPECT_EQ(q.next_time(), at_ms(2));
  const auto fired = q.pop();
  EXPECT_EQ(fired.at, at_ms(2));
  fired.fn();
  EXPECT_EQ(order, (std::vector<int>{2}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleHandleCannotCancelSlotReuse) {
  EventQueue q;
  const EventId old_id = q.push(at_ms(1), [] {});
  q.pop().fn();  // retires the slot; it is now free for reuse
  bool fired = false;
  const EventId new_id = q.push(at_ms(2), [&] { fired = true; });
  EXPECT_NE(old_id, new_id);  // generation differs even if the slot matches
  q.cancel(old_id);           // stale handle: must not touch the new event
  EXPECT_EQ(q.size(), 1u);
  q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelledHandleCannotCancelSlotReuse) {
  EventQueue q;
  const EventId old_id = q.push(at_ms(1), [] {});
  q.cancel(old_id);
  bool fired = false;
  q.push(at_ms(2), [&] { fired = true; });
  q.cancel(old_id);  // second cancel through a recycled slot: no effect
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, InterleavedPushCancelKeepsOrder) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> doomed;
  // Alternate survivors and victims at mixed times, cancelling as we go so
  // slots recycle mid-stream; survivors must still fire in (time, seq)
  // order with ties broken by original insertion order.
  for (int round = 0; round < 50; ++round) {
    q.push(at_ms((round * 7) % 20), [&order, round] { order.push_back(round); });
    doomed.push_back(
        q.push(at_ms((round * 3) % 20), [&order] { order.push_back(-1); }));
    if (round % 3 == 2) {
      q.cancel(doomed[round - 2]);
      q.cancel(doomed[round - 1]);
      q.cancel(doomed[round]);
    }
  }
  for (const EventId id : doomed) q.cancel(id);  // idempotent for the rest
  SimTime prev = SimTime::origin();
  std::vector<int> seen_at_time;
  while (!q.empty()) {
    const SimTime t = q.next_time();
    EXPECT_GE(t, prev);
    const auto fired = q.pop();
    EXPECT_EQ(fired.at, t);
    fired.fn();
    prev = t;
  }
  // No victim fired, every survivor fired exactly once.
  EXPECT_EQ(order.size(), 50u);
  std::vector<bool> fired_round(50, false);
  for (const int r : order) {
    ASSERT_GE(r, 0);
    EXPECT_FALSE(fired_round[std::size_t(r)]);
    fired_round[std::size_t(r)] = true;
  }
}

TEST(EventQueue, TieOrderSurvivesHeavyCancellation) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> victims;
  for (int i = 0; i < 10; ++i) {
    victims.push_back(q.push(at_ms(5), [&order] { order.push_back(-1); }));
    q.push(at_ms(5), [&order, i] { order.push_back(i); });
  }
  for (const EventId id : victims) q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<double> fire_times;
  for (int i = 999; i >= 0; --i) {
    q.push(at_ms(i % 100), [] {});
  }
  while (!q.empty()) fire_times.push_back(q.pop().at.ms());
  for (std::size_t i = 1; i < fire_times.size(); ++i) {
    EXPECT_LE(fire_times[i - 1], fire_times[i]);
  }
}

}  // namespace
}  // namespace recwild::net
