#include "net/latency.hpp"

#include <gtest/gtest.h>

namespace recwild::net {
namespace {

LatencyModel make_model(LatencyParams params = {}) {
  return LatencyModel{params, stats::Rng{1234}};
}

GeoPoint point(const char* code) { return find_location(code)->point; }

TEST(LatencyModel, BaseRttIsStablePerPath) {
  auto model = make_model();
  const Duration a = model.base_rtt(1, point("FRA"), 2, point("SYD"));
  const Duration b = model.base_rtt(1, point("FRA"), 2, point("SYD"));
  EXPECT_EQ(a, b);
}

TEST(LatencyModel, BaseRttSymmetricInNodeOrder) {
  auto model = make_model();
  const Duration ab = model.base_rtt(1, point("FRA"), 2, point("SYD"));
  const Duration ba = model.base_rtt(2, point("SYD"), 1, point("FRA"));
  EXPECT_EQ(ab, ba);
}

TEST(LatencyModel, PathStateIndependentOfQueryOrder) {
  // The same (pair, seed) must give the same path RTT regardless of which
  // other paths were queried first — forks are keyed by pair id.
  auto m1 = make_model();
  const Duration direct = m1.base_rtt(5, point("DUB"), 9, point("GRU"));

  auto m2 = make_model();
  (void)m2.base_rtt(1, point("FRA"), 2, point("SYD"));
  (void)m2.base_rtt(3, point("NRT"), 4, point("IAD"));
  const Duration later = m2.base_rtt(5, point("DUB"), 9, point("GRU"));
  EXPECT_EQ(direct, later);
}

TEST(LatencyModel, FartherMeansSlower) {
  auto model = make_model();
  // Average out path-specific factors across many node pairs.
  double near_sum = 0;
  double far_sum = 0;
  for (std::uint32_t i = 0; i < 40; ++i) {
    near_sum +=
        model.base_rtt(100 + i, point("FRA"), 200 + i, point("AMS")).ms();
    far_sum +=
        model.base_rtt(300 + i, point("FRA"), 400 + i, point("SYD")).ms();
  }
  EXPECT_LT(near_sum / 40, far_sum / 40);
}

TEST(LatencyModel, CalibrationEuToFrankfurt) {
  // Paper Table 2: European VPs see ~39 ms median to FRA. Allow a band.
  auto model = make_model();
  std::vector<double> rtts;
  const auto cities = locations_on(Continent::Europe);
  std::uint32_t node = 1000;
  for (const auto& city : cities) {
    for (int rep = 0; rep < 10; ++rep) {
      rtts.push_back(
          model.base_rtt(node++, city.point, 1, point("FRA")).ms());
    }
  }
  std::sort(rtts.begin(), rtts.end());
  const double median = rtts[rtts.size() / 2];
  EXPECT_GT(median, 15.0);
  EXPECT_LT(median, 80.0);
}

TEST(LatencyModel, CalibrationEuToSydney) {
  // Paper Table 2: EU -> SYD median ~355 ms.
  auto model = make_model();
  std::vector<double> rtts;
  std::uint32_t node = 2000;
  for (const auto& city : locations_on(Continent::Europe)) {
    for (int rep = 0; rep < 10; ++rep) {
      rtts.push_back(
          model.base_rtt(node++, city.point, 1, point("SYD")).ms());
    }
  }
  std::sort(rtts.begin(), rtts.end());
  const double median = rtts[rtts.size() / 2];
  EXPECT_GT(median, 220.0);
  EXPECT_LT(median, 480.0);
}

TEST(LatencyModel, OneWayIsAboutHalfRtt) {
  auto model = make_model();
  stats::Rng packet_rng{7};
  const double rtt = model.base_rtt(1, point("FRA"), 2, point("IAD")).ms();
  double sum = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    sum += model.one_way(1, point("FRA"), 2, point("IAD"), packet_rng).ms();
  }
  EXPECT_NEAR(sum / n, rtt / 2, rtt * 0.1);
}

TEST(LatencyModel, OneWayNeverBelowHalfBase) {
  // Jitter is additive-positive: one-way >= base/2.
  auto model = make_model();
  stats::Rng packet_rng{11};
  const double rtt = model.base_rtt(1, point("FRA"), 2, point("NRT")).ms();
  for (int i = 0; i < 500; ++i) {
    const double ow =
        model.one_way(1, point("FRA"), 2, point("NRT"), packet_rng).ms();
    EXPECT_GE(ow, rtt / 2);
  }
}

TEST(LatencyModel, DropRateMatchesConfig) {
  LatencyParams params;
  params.loss_rate = 0.1;
  auto model = make_model(params);
  stats::Rng packet_rng{13};
  int drops = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (model.drop(packet_rng)) ++drops;
  }
  EXPECT_NEAR(drops / double(n), 0.1, 0.01);
}

TEST(LatencyModel, ZeroLossNeverDrops) {
  LatencyParams params;
  params.loss_rate = 0.0;
  auto model = make_model(params);
  stats::Rng packet_rng{17};
  for (int i = 0; i < 10'000; ++i) EXPECT_FALSE(model.drop(packet_rng));
}

TEST(LatencyModel, DistinctPathsGetDistinctCharacter) {
  auto model = make_model();
  // Same endpoints geographically, different node ids -> different paths.
  const Duration a = model.base_rtt(1, point("FRA"), 2, point("IAD"));
  const Duration b = model.base_rtt(3, point("FRA"), 4, point("IAD"));
  EXPECT_NE(a.count_micros(), b.count_micros());
}

}  // namespace
}  // namespace recwild::net
