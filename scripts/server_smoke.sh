#!/bin/sh
# Server smoke test, run by CI: build artifacts assumed present. Launches
# a real authnsd on an ephemeral loopback port and checks, via tdig, that
#   1. an A query is answered authoritatively over UDP and TCP,
#   2. the CHAOS identity answers,
#   3. undecodable-but-headered garbage is answered with FORMERR.
#
#   scripts/server_smoke.sh [build-dir]   # default: ./build
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
TMP=$(mktemp -d)
AUTHNSD_PID=
cleanup() {
  [ -n "$AUTHNSD_PID" ] && kill "$AUTHNSD_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

cat > "$TMP/smoke.zone" <<'EOF'
$TTL 3600
@    IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@    IN NS  ns1
ns1  IN A   192.0.2.1
www  IN A   192.0.2.80
EOF

"$BUILD/tools/authnsd" --zone smoke.test="$TMP/smoke.zone" \
  --port 0 --workers 2 --identity smoked > "$TMP/authnsd.out" &
AUTHNSD_PID=$!
i=0
while [ ! -s "$TMP/authnsd.out" ] && [ "$i" -lt 50 ]; do
  sleep 0.1; i=$((i + 1))
done
PORT=$(sed -n 's/^listening on [0-9.]*:\([0-9]*\) .*/\1/p' "$TMP/authnsd.out")
[ -n "$PORT" ] || fail "authnsd did not start: $(cat "$TMP/authnsd.out")"
echo "authnsd up on port $PORT"

# 1a. UDP answer.
OUT=$("$BUILD/tools/tdig" @127.0.0.1 -p "$PORT" www.smoke.test A)
echo "$OUT" | grep -q 'rcode: NOERROR' || fail "UDP query not NOERROR"
echo "$OUT" | grep -q '192\.0\.2\.80'  || fail "UDP answer missing A record"
echo "$OUT" | grep -q 'flags:.*aa'     || fail "UDP answer not authoritative"

# 1b. Same over TCP.
OUT=$("$BUILD/tools/tdig" @127.0.0.1 -p "$PORT" www.smoke.test A +tcp)
echo "$OUT" | grep -q '192\.0\.2\.80'  || fail "TCP answer missing A record"

# 2. CHAOS identity.
OUT=$("$BUILD/tools/tdig" @127.0.0.1 -p "$PORT" id.server TXT --class CH +short)
[ "$OUT" = '"smoked"' ] || fail "CH identity returned: $OUT"

# 3. Garbage with a full header (qdcount=1, overrunning label) => FORMERR.
#    Reply must echo id 1234 and set QR + rcode FormErr => flags 8001.
OUT=$("$BUILD/tools/tdig" @127.0.0.1 -p "$PORT" \
  --raw 1234000000010000000000003f41 --hex-out)
case "$OUT" in
  12348001*) ;;
  *) fail "garbage reply was '$OUT', wanted FORMERR (12348001...)" ;;
esac

echo "server smoke: OK"
