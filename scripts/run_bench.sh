#!/bin/sh
# Canonical benchmark runner. Builds (if needed) and runs the datapath
# benchmarks, the attack x defense matrix, the anycast failover bench,
# the real-socket server bench and the bulk-resolution scan bench,
# leaving BENCH_datapath.json, BENCH_campaign.json, BENCH_ddos.json,
# BENCH_anycast.json, BENCH_server.json and BENCH_scan.json at the repo
# root. These are the numbers quoted in EXPERIMENTS.md and gated by CI's
# nightly bench job.
#
#   scripts/run_bench.sh [build-dir]      # default: ./build
#
# The server bench launches a real authnsd (SO_REUSEPORT, 2 workers) on an
# ephemeral loopback port, replays the query log of a simulated campaign
# (atlas_campaign --dump-auth-queries) through tools/loadgen, and records
# the achieved qps and latency percentiles.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" --target bench_datapath bench_parallel_campaign \
  bench_ddos bench_anycast bench_scan authnsd loadgen atlas_campaign

echo "== bench_datapath (codec allocations, differential vs legacy) =="
"$BUILD/bench/bench_datapath" --iters 20000 \
  --json "$ROOT/BENCH_datapath.json"

echo
echo "== bench_parallel_campaign (canonical: 10k probes, 31 q/VP, seed 42) =="
"$BUILD/bench/bench_parallel_campaign" --probes 10000 --shards 1,2,4 \
  --queries 31 --seed 42 --json "$ROOT/BENCH_campaign.json"

echo
echo "== bench_parallel_campaign (memory: 100k probes, 3 q/VP, per-shard RSS) =="
"$BUILD/bench/bench_parallel_campaign" --probes 100000 --shards 1,4 \
  --queries 3 --seed 42 --json "$ROOT/BENCH_campaign_100k.json"

echo
echo "== bench_ddos (attack x defense matrix, NXNS + water torture) =="
"$BUILD/bench/bench_ddos" --seed 42 --matrix-only \
  --json "$ROOT/BENCH_ddos.json"

echo
echo "== bench_anycast (dynamic catchments: withdrawal, failover, unicast gap) =="
"$BUILD/bench/bench_anycast" --seed 42 --json "$ROOT/BENCH_anycast.json"

echo
echo "== bench_scan (canonical: 10M names, window 32, pipelined vs serial) =="
"$BUILD/bench/bench_scan" --names 10000000 --window 32 --seed 42 \
  --json "$ROOT/BENCH_scan.json"

echo
echo "== bench_server (live authnsd + loadgen, campaign query replay) =="
TMP=$(mktemp -d)
trap 'kill "$AUTHNSD_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

# The query mix: what the simulated campaign's authoritatives actually saw
# (shards=1 so the caller world logs the traffic).
"$BUILD/examples/atlas_campaign" 2C 500 1 \
  --dump-auth-queries "$TMP/queries.txt" > /dev/null
QUERY_COUNT=$(wc -l < "$TMP/queries.txt")
echo "replaying $QUERY_COUNT campaign queries"

# The same wildcard zone the testbed serves for those names.
cat > "$TMP/bench.zone" <<'EOF'
$TTL 3600
@    IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@    IN NS  ns1
ns1  IN A   192.0.2.1
*    5 IN TXT "BENCH"
EOF

"$BUILD/tools/authnsd" --zone ourtestdomain.nl="$TMP/bench.zone" \
  --port 0 --workers 2 > "$TMP/authnsd.out" &
AUTHNSD_PID=$!
# Wait for the "listening on ADDR:PORT" line, then parse the port.
i=0
while [ ! -s "$TMP/authnsd.out" ] && [ "$i" -lt 50 ]; do
  sleep 0.1; i=$((i + 1))
done
PORT=$(sed -n 's/^listening on [0-9.]*:\([0-9]*\) .*/\1/p' "$TMP/authnsd.out")
[ -n "$PORT" ] || { echo "authnsd failed to start"; cat "$TMP/authnsd.out"; exit 1; }

"$BUILD/tools/loadgen" --port "$PORT" --queries "$TMP/queries.txt" \
  --threads 4 --duration 5 --json "$ROOT/BENCH_server.json"
cat "$ROOT/BENCH_server.json"

kill "$AUTHNSD_PID" 2>/dev/null || true
wait "$AUTHNSD_PID" 2>/dev/null || true

echo
echo "wrote $ROOT/BENCH_datapath.json, $ROOT/BENCH_campaign.json, $ROOT/BENCH_campaign_100k.json, $ROOT/BENCH_ddos.json, $ROOT/BENCH_anycast.json, $ROOT/BENCH_scan.json and $ROOT/BENCH_server.json"
