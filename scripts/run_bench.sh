#!/bin/sh
# Canonical datapath benchmark runner. Builds (if needed) and runs the two
# datapath benchmarks with their canonical arguments, leaving
# BENCH_datapath.json and BENCH_campaign.json at the repo root. These are
# the numbers quoted in EXPERIMENTS.md and gated by CI's nightly bench job.
#
#   scripts/run_bench.sh [build-dir]      # default: ./build
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}

if [ ! -f "$BUILD/CMakeCache.txt" ]; then
  cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD" --target bench_datapath bench_parallel_campaign

echo "== bench_datapath (codec allocations, differential vs legacy) =="
"$BUILD/bench/bench_datapath" --iters 20000 \
  --json "$ROOT/BENCH_datapath.json"

echo
echo "== bench_parallel_campaign (canonical: 10k probes, 31 q/VP, seed 42) =="
"$BUILD/bench/bench_parallel_campaign" --probes 10000 --shards 1 \
  --queries 31 --seed 42 --json "$ROOT/BENCH_campaign.json"

echo
echo "wrote $ROOT/BENCH_datapath.json and $ROOT/BENCH_campaign.json"
