#!/bin/sh
# Cross-checks the observability surface against its documentation:
#
#   1. every metric name declared in src/obs/names.hpp appears (backticked)
#      in docs/METRICS.md;
#   2. every backticked dotted metric name in docs/METRICS.md exists in
#      src/obs/names.hpp (no docs for phantom metrics);
#   3. every trace-kind wire name in src/obs/decision_trace.cpp appears in
#      docs/METRICS.md;
#   4. no instrumentation site under src/ registers a metric with a raw
#      string literal — all registrations go through obs::names constants,
#      so check 1 is exhaustive by construction.
#
# Run from the repository root (CI does; ctest registers it as
# ObsDocs.MetricsDocumented). Exits non-zero with one line per violation.
set -u

root=$(dirname "$0")/..
names_hpp="$root/src/obs/names.hpp"
trace_cpp="$root/src/obs/decision_trace.cpp"
metrics_md="$root/docs/METRICS.md"
fail=0

[ -f "$names_hpp" ] || { echo "missing $names_hpp"; exit 1; }
[ -f "$metrics_md" ] || { echo "missing $metrics_md"; exit 1; }

# 1. declared names must be documented.
for name in $(sed -n 's/.*= "\([a-z0-9_.]*\)";.*/\1/p' "$names_hpp"); do
    if ! grep -q "\`$name\`" "$metrics_md"; then
        echo "undocumented metric: $name (declared in src/obs/names.hpp," \
             "missing from docs/METRICS.md)"
        fail=1
    fi
done

# 2. documented dotted names must be declared.
for name in $(grep -o '`[a-z0-9_]*\.[a-z0-9_.]*`' "$metrics_md" \
                  | tr -d '\`' | sort -u); do
    case "$name" in
        *.hpp|*.cpp|*.md|*.sh|*.json|*.tsv|*.csv|*.yml) continue ;;
    esac
    if ! grep -q "\"$name\"" "$names_hpp"; then
        echo "phantom metric: $name (documented in docs/METRICS.md," \
             "not declared in src/obs/names.hpp)"
        fail=1
    fi
done

# 3. trace kinds must be documented.
for kind in $(sed -n 's/.*"\([a-z_][a-z_]*\)",.*/\1/p' "$trace_cpp"); do
    if ! grep -q "\`$kind\`" "$metrics_md"; then
        echo "undocumented trace kind: $kind (src/obs/decision_trace.cpp," \
             "missing from docs/METRICS.md)"
        fail=1
    fi
done

# 4. registrations must use obs::names constants, not string literals.
if grep -rn --include='*.cpp' --include='*.hpp' \
        -e '\.counter("' -e '\.gauge("' -e '\.histogram("' \
        "$root/src" | grep -v 'src/obs/'; then
    echo "raw metric-name literal above: use an obs::names constant" \
         "(and document it in docs/METRICS.md)"
    fail=1
fi

[ "$fail" -eq 0 ] && echo "metrics documentation: OK"
exit "$fail"
