// DDoS benchmarks, two generations.
//
// Scenarios A/B (paper §7 "Other Considerations"): anycast and NS
// redundancy under the November 2015 Root DNS event [18] — letters or
// sites go dark, success barely moves, latency rises.
//
// Attack×defense matrix (docs/ATTACKS.md): adversarial workloads from
// src/attack — NXNS delegation-chain amplification and water-torture
// random-subdomain floods — replayed by bot vantage points over a live
// measurement campaign, against every defense profile:
//   off          no defenses armed
//   rrl          response-rate limiting w/ TC-slip on defender servers
//   fanout_cap   referral-fanout cap (engine-wide, managed-DNS model)
//   fetch        resolver fetch limits (per-resolution + per-zone)
//   all          rrl + fanout_cap + fetch
//   all+qmin     all, plus QNAME minimization at every recursive
//
// Per cell we report the measured amplification factor — victim-side
// queries attributable to the attack divided by injected bot queries —
// and the campaign's goodput (answered/sent) under attack. `--json FILE`
// emits the matrix plus the headline off-vs-defended numbers the bench
// workflow gates on (amplification_reduction >= 5).
#include "bench_common.hpp"

#include <cctype>
#include <cinttypes>

#include "attack/generator.hpp"
#include "attack/schedule.hpp"
#include "experiment/failure.hpp"
#include "obs/names.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

void run_scenario(const char* title, FailureScenarioConfig cfg,
                  const benchutil::Options& opt) {
  TestbedConfig tcfg;
  tcfg.seed = opt.seed;
  tcfg.build_nl = false;
  tcfg.build_population = false;
  Testbed tb{tcfg};

  cfg.recursives = std::max<std::size_t>(opt.probes / 10, 60);
  const auto result = run_failure_scenario(tb, cfg);

  report::header(title);
  std::printf("%-8s %10s %10s %12s %12s\n", "phase", "queries", "success",
              "median", "p90");
  auto row = [](const char* name, const PhaseStats& p) {
    std::printf("%-8s %10zu %10s %12s %12s\n", name, p.queries,
                report::pct(p.success_rate).c_str(),
                report::ms(p.median_latency_ms, 0).c_str(),
                report::ms(p.p90_latency_ms, 0).c_str());
  };
  row("before", result.before);
  row("during", result.during);
  row("after", result.after);

  std::printf("\nper-minute success rate:\n");
  for (std::size_t m = 0; m < result.minute_success.size(); ++m) {
    if (result.minute_success[m] < 0) continue;
    std::printf("  min %2zu: %6.1f%%  %s\n", m,
                result.minute_success[m] * 100,
                report::bar(result.minute_success[m], 40).c_str());
  }
}

// ---------------------------------------------------------------------------
// Attack x defense matrix.

struct DefenseProfile {
  const char* name;
  bool rrl = false;
  bool fanout_cap = false;
  bool fetch_limits = false;
  bool qmin = false;
};

struct CellResult {
  std::string attack;
  std::string defense;
  std::uint64_t injected = 0;
  std::uint64_t victim_total = 0;   // every query the victims received
  std::uint64_t victim_attack = 0;  // ...attributable to the attack
  std::uint64_t rrl_dropped = 0;
  std::uint64_t rrl_slipped = 0;
  std::uint64_t referral_capped = 0;
  std::uint64_t fetch_spawned = 0;
  std::uint64_t fetch_capped = 0;
  std::uint64_t campaign_sent = 0;
  std::uint64_t campaign_answered = 0;
  double amplification = 0.0;
  double goodput = 0.0;
};

CellResult run_attack_cell(attack::AttackKind kind, const DefenseProfile& d,
                           const benchutil::Options& opt) {
  TestbedConfig cfg;
  cfg.seed = opt.seed;
  // The matrix runs many worlds; a few hundred probes keep each cell fast
  // while leaving dozens of distinct recursives for the bots to launder
  // their queries through.
  cfg.population.probes = std::min<std::size_t>(opt.probes, 300);
  cfg.test_sites = {"FRA", "DFW"};

  attack::AttackSchedule sched;
  sched.zone().chains = 8;
  sched.zone().fanout = 16;
  sched.zone().depth = 1;
  attack::AttackEvent ev;
  ev.kind = kind;
  ev.start = net::SimTime::origin() + net::Duration::seconds(30);
  ev.end = net::SimTime::origin() + net::Duration::seconds(180);
  ev.interval = net::Duration::seconds(2);
  ev.bots = 16;
  sched.add(ev);
  cfg.attack = sched;

  if (d.rrl) {
    cfg.rrl.rate = 10;
    cfg.rrl.window = net::Duration::seconds(1);
    cfg.rrl.slip = 2;
  }
  if (d.fanout_cap) cfg.referral_fanout_cap = 2;
  if (d.fetch_limits) {
    cfg.population.resolver_template.max_fetches_per_resolution = 2;
    cfg.population.resolver_template.fetches_per_zone = 4;
  }
  if (d.qmin) cfg.population.resolver_template.qname_minimization = true;

  Testbed tb{cfg};
  CampaignConfig cc;
  cc.interval = net::Duration::seconds(10);
  cc.queries_per_vp = 18;  // ~3 simulated minutes, attack active from 0:30
  const CampaignResult result = run_campaign(tb, cc);

  CellResult cell;
  cell.attack = attack::to_string(kind);
  cell.defense = d.name;
  const auto& m = result.metrics;
  cell.injected = m.counter_value(obs::names::kAttackQueriesInjected);
  cell.victim_total = m.counter_value(obs::names::kAttackVictimQueries);
  cell.rrl_dropped = m.counter_value(obs::names::kRrlDropped);
  cell.rrl_slipped = m.counter_value(obs::names::kRrlSlipped);
  cell.referral_capped = m.counter_value(obs::names::kAuthnsReferralCapped);
  cell.fetch_spawned = m.counter_value(obs::names::kResolverFetchSpawned);
  cell.fetch_capped =
      m.counter_value(obs::names::kResolverFetchResolutionCapped) +
      m.counter_value(obs::names::kResolverFetchZoneCapped);
  cell.campaign_sent = m.counter_value(obs::names::kCampaignQueriesSent);
  cell.campaign_answered =
      m.counter_value(obs::names::kCampaignQueriesAnswered);
  for (auto& svc : tb.test_services()) {
    for (auto& site : svc.sites()) {
      for (const auto& entry : site.server->log().entries()) {
        if (attack::is_attack_query_name(entry.qname)) ++cell.victim_attack;
      }
    }
  }
  cell.amplification =
      cell.injected > 0
          ? static_cast<double>(cell.victim_attack) /
                static_cast<double>(cell.injected)
          : 0.0;
  cell.goodput = cell.campaign_sent > 0
                     ? static_cast<double>(cell.campaign_answered) /
                           static_cast<double>(cell.campaign_sent)
                     : 0.0;
  return cell;
}

void print_cell(const CellResult& c) {
  std::printf("%-14s %-10s %9" PRIu64 " %9" PRIu64 " %7.2fx %8.1f%% %8" PRIu64
              " %8" PRIu64 " %8" PRIu64 "\n",
              c.attack.c_str(), c.defense.c_str(), c.injected,
              c.victim_attack, c.amplification, c.goodput * 100,
              c.rrl_dropped + c.rrl_slipped, c.referral_capped,
              c.fetch_capped);
}

void write_json(const std::string& path, const std::vector<CellResult>& cells,
                const CellResult& off, const CellResult& defended) {
  std::ofstream out{path};
  out << "{\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& c = cells[i];
    out << "    {\"attack\": \"" << c.attack << "\", \"defense\": \""
        << c.defense << "\", \"injected\": " << c.injected
        << ", \"victim_total\": " << c.victim_total
        << ", \"victim_attack\": " << c.victim_attack
        << ", \"amplification\": " << c.amplification
        << ", \"goodput\": " << c.goodput
        << ", \"rrl_dropped\": " << c.rrl_dropped
        << ", \"rrl_slipped\": " << c.rrl_slipped
        << ", \"referral_capped\": " << c.referral_capped
        << ", \"fetch_spawned\": " << c.fetch_spawned
        << ", \"fetch_capped\": " << c.fetch_capped
        << ", \"campaign_sent\": " << c.campaign_sent
        << ", \"campaign_answered\": " << c.campaign_answered << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  const double reduction = defended.amplification > 0
                               ? off.amplification / defended.amplification
                               : 0.0;
  out << "  ],\n";
  out << "  \"amplification_off\": " << off.amplification << ",\n";
  out << "  \"amplification_defended\": " << defended.amplification << ",\n";
  out << "  \"amplification_reduction\": " << reduction << ",\n";
  out << "  \"goodput_off\": " << off.goodput << ",\n";
  out << "  \"goodput_defended\": " << defended.goodput << "\n";
  out << "}\n";
  std::printf("\nattack matrix -> %s\n", path.c_str());
}

void run_attack_matrix(const benchutil::Options& opt,
                       const std::string& json_path) {
  const DefenseProfile kProfiles[] = {
      {"off"},
      {"rrl", /*rrl=*/true},
      {"fanout_cap", false, /*fanout_cap=*/true},
      {"fetch", false, false, /*fetch_limits=*/true},
      {"all", true, true, true},
      {"all+qmin", true, true, true, /*qmin=*/true},
  };

  report::header("Attack x defense matrix (NXNS + water torture)");
  std::printf("%-14s %-10s %9s %9s %8s %9s %8s %8s %8s\n", "attack",
              "defense", "injected", "victim", "amp", "goodput", "rrl",
              "refcap", "fetchcap");

  std::vector<CellResult> cells;
  for (const auto& d : kProfiles) {
    cells.push_back(run_attack_cell(attack::AttackKind::Nxns, d, opt));
    print_cell(cells.back());
  }
  for (const char* name : {"off", "rrl", "all"}) {
    for (const auto& d : kProfiles) {
      if (std::strcmp(d.name, name) != 0) continue;
      cells.push_back(
          run_attack_cell(attack::AttackKind::WaterTorture, d, opt));
      print_cell(cells.back());
    }
  }

  // Headline gate: NXNS defenses-off vs the full defense stack.
  const CellResult& off = cells[0];
  const CellResult* defended = nullptr;
  for (const auto& c : cells) {
    if (c.attack == "nxns" && c.defense == "all") defended = &c;
  }
  const double reduction =
      (defended != nullptr && defended->amplification > 0)
          ? off.amplification / defended->amplification
          : 0.0;
  std::printf("\nNXNS amplification: %.2fx undefended, %.2fx defended "
              "(%.1fx reduction); goodput %.1f%% -> %.1f%%\n",
              off.amplification, defended->amplification, reduction,
              off.goodput * 100, defended->goodput * 100);

  if (!json_path.empty()) write_json(json_path, cells, off, *defended);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);
  std::string json_path;
  bool matrix_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--matrix-only") == 0) matrix_only = true;
  }

  if (!matrix_only) {
    FailureScenarioConfig a;
    a.kind = FailureKind::ServiceDown;
    a.targets = {0, 3, 10};  // a-root, d-root, k-root fully dark
    run_scenario("DDoS scenario A: 3 of 13 letters fully down", a, opt);

    FailureScenarioConfig b;
    b.kind = FailureKind::SitesDown;
    b.targets = {3, 5, 8, 9, 10, 11};  // the large anycast letters
    b.site_fraction = 0.5;
    run_scenario("DDoS scenario B: half the sites of 6 big letters dark", b,
                 opt);

    std::printf("\n(shape check: success stays near 100%% — NS redundancy + "
                "anycast absorb the event; latency rises during it)\n");
  }

  run_attack_matrix(opt, json_path);
  return 0;
}
