// Extension experiment (paper §7 "Other Considerations"): anycast and NS
// redundancy under DDoS — modelled on the November 2015 Root DNS event
// the paper cites [18]. Not a paper figure; an ablation DESIGN.md calls
// out.
//
// Scenario A: three entire letters stop answering for the middle third of
// the run. Scenario B: half the sites of the six largest letters go dark
// (anycast partial failure — catchments black-hole).
//
// Expected shape (matching the 2015 event's findings): resolution success
// barely moves — recursives fail over across the remaining letters — at
// the cost of extra latency during the event.
#include "bench_common.hpp"

#include "experiment/failure.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

void run_scenario(const char* title, FailureScenarioConfig cfg,
                  const benchutil::Options& opt) {
  TestbedConfig tcfg;
  tcfg.seed = opt.seed;
  tcfg.build_nl = false;
  tcfg.build_population = false;
  Testbed tb{tcfg};

  cfg.recursives = std::max<std::size_t>(opt.probes / 10, 60);
  const auto result = run_failure_scenario(tb, cfg);

  report::header(title);
  std::printf("%-8s %10s %10s %12s %12s\n", "phase", "queries", "success",
              "median", "p90");
  auto row = [](const char* name, const PhaseStats& p) {
    std::printf("%-8s %10zu %10s %12s %12s\n", name, p.queries,
                report::pct(p.success_rate).c_str(),
                report::ms(p.median_latency_ms, 0).c_str(),
                report::ms(p.p90_latency_ms, 0).c_str());
  };
  row("before", result.before);
  row("during", result.during);
  row("after", result.after);

  std::printf("\nper-minute success rate:\n");
  for (std::size_t m = 0; m < result.minute_success.size(); ++m) {
    if (result.minute_success[m] < 0) continue;
    std::printf("  min %2zu: %6.1f%%  %s\n", m,
                result.minute_success[m] * 100,
                report::bar(result.minute_success[m], 40).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);

  FailureScenarioConfig a;
  a.kind = FailureKind::ServiceDown;
  a.targets = {0, 3, 10};  // a-root, d-root, k-root fully dark
  run_scenario("DDoS scenario A: 3 of 13 letters fully down", a, opt);

  FailureScenarioConfig b;
  b.kind = FailureKind::SitesDown;
  b.targets = {3, 5, 8, 9, 10, 11};  // the large anycast letters
  b.site_fraction = 0.5;
  run_scenario("DDoS scenario B: half the sites of 6 big letters dark", b,
               opt);

  std::printf("\n(shape check: success stays near 100%% — NS redundancy + "
              "anycast absorb the event; latency rises during it)\n");
  return 0;
}
