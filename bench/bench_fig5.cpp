// Figure 5: RTT sensitivity for combination 2B (DUB + FRA).
//
// For every continent, two points: the fraction of queries sent to each
// authoritative vs the median RTT to it. Paper shape: nearby VPs (EU)
// follow small RTT differences (FRA preferred); far-away VPs (AS, with a
// similar ~20 ms difference but ~250 ms absolute RTT) split nearly evenly —
// RTT-based preference decreases when all authoritatives are >~150 ms away.
#include "bench_common.hpp"

using namespace recwild;
using namespace recwild::experiment;

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);
  auto tb = benchutil::make_testbed(opt, "2B");
  const auto result = run_campaign(tb, benchutil::paper_campaign());
  const auto points = analyze_rtt_sensitivity(result);

  report::header("Figure 5: RTT sensitivity of 2B (DUB vs FRA)");
  std::printf("%-4s %-5s %10s %10s %6s\n", "cont", "NS", "medianRTT",
              "queries", "VPs");
  for (const auto& pt : points) {
    std::printf("%-4s %-5s %10s %9.1f%% %6zu\n",
                std::string{net::continent_code(pt.continent)}.c_str(),
                pt.code.c_str(), report::ms(pt.median_rtt_ms).c_str(),
                pt.query_fraction * 100, pt.vp_count);
  }

  // The paper's headline numbers for this figure.
  const auto prefs = analyze_preferences(result);
  stats::Sample eu_gap_pref_fra;
  for (const auto& vp : prefs.vps) {
    if (vp.continent != net::Continent::Europe) continue;
    if (vp.favourite == 1) {  // FRA
      eu_gap_pref_fra.add(vp.rtt_ms[0] - vp.rtt_ms[1]);
    }
  }
  if (!eu_gap_pref_fra.empty()) {
    std::printf("\nEU VPs preferring FRA see it %.1f ms faster than DUB "
                "(paper: 13.9 ms)\n",
                eu_gap_pref_fra.median());
  }
  std::printf("(paper: EU picks the faster NS; AS splits nearly evenly "
              "despite a 20.3 ms difference because both are >150 ms "
              "away)\n");
  return 0;
}
