// §7 primary recommendation: "worst-case latency will be limited by the
// least anycast authoritative — if some authoritatives are anycast, all
// should be."
//
// Runs the same production hour against (a) the paper's .nl deployment
// (5 unicast NSes in the Netherlands + 3 global anycast services) and
// (b) an all-anycast variant, then compares the query-weighted latency
// distribution per client continent.
//
// Paper shape: recursives keep sending a share of queries to every NS, so
// far-away clients (e.g. the 23% of .nl unicast traffic coming from the
// US) pay the unicast round-trip; making every NS anycast removes that
// tail while leaving nearby clients unaffected.
#include "bench_common.hpp"

#include "experiment/production.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

DeploymentLatency measure(bool all_anycast, const benchutil::Options& opt) {
  TestbedConfig cfg;
  cfg.seed = opt.seed;
  cfg.build_population = false;
  cfg.all_anycast_nl = all_anycast;
  Testbed tb{cfg};

  ProductionConfig pc;
  pc.target = ProductionTarget::Nl;
  pc.recursives = std::max<std::size_t>(opt.probes / 4, 100);
  const auto result = run_production(tb, pc);
  return analyze_nl_latency(tb, result);
}

void print(const char* title, const DeploymentLatency& lat) {
  std::printf("\n%s\n", title);
  std::printf("%-4s %10s %10s %10s %10s\n", "cont", "queries", "median",
              "p90", "worst");
  for (const auto& row : lat.continents) {
    std::printf("%-4s %10zu %10s %10s %10s\n",
                std::string{net::continent_code(row.continent)}.c_str(),
                row.queries, report::ms(row.median_ms, 0).c_str(),
                report::ms(row.p90_ms, 0).c_str(),
                report::ms(row.worst_ms, 0).c_str());
  }
  std::printf("%-4s %10s %10s %10s %10s\n", "ALL", "",
              report::ms(lat.overall_median_ms, 0).c_str(),
              report::ms(lat.overall_p90_ms, 0).c_str(),
              report::ms(lat.overall_worst_ms, 0).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);
  report::header("Section 7: mixed unicast/anycast vs all-anycast .nl");

  const auto mixed = measure(false, opt);
  const auto anycast = measure(true, opt);
  print("(a) paper's deployment: 5x unicast AMS + 3x global anycast",
        mixed);
  print("(b) recommendation: all 8 services anycast", anycast);

  std::printf("\np90 improvement from all-anycast: %.0f ms -> %.0f ms "
              "(%.1fx)\n",
              mixed.overall_p90_ms, anycast.overall_p90_ms,
              anycast.overall_p90_ms > 0
                  ? mixed.overall_p90_ms / anycast.overall_p90_ms
                  : 0.0);
  std::printf("(the worst-case latency of the mixed deployment is set by "
              "its unicast NSes, as §7 predicts)\n");
  return 0;
}
