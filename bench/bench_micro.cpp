// Microbenchmarks (google-benchmark): the substrate hot paths — wire codec,
// zone lookup, caches, selection, and the event loop. Not a paper figure;
// documents the cost profile of the library.
#include <benchmark/benchmark.h>

#include "authns/query_engine.hpp"
#include "dnscore/codec.hpp"
#include "net/network.hpp"
#include "resolver/infra_cache.hpp"
#include "resolver/record_cache.hpp"
#include "resolver/selection.hpp"

namespace {

using namespace recwild;

dns::Message sample_response() {
  dns::Message m = dns::Message::make_query(
      1234, dns::Name::parse("q1234x7.ourtestdomain.nl"), dns::RRType::TXT);
  m.header.qr = true;
  m.header.aa = true;
  m.edns = dns::EdnsInfo{};
  m.answers.push_back(
      dns::ResourceRecord{dns::Name::parse("q1234x7.ourtestdomain.nl"),
                          dns::RRClass::IN, 5, dns::TxtRdata{{"FRA"}}});
  m.authorities.push_back(dns::ResourceRecord{
      dns::Name::parse("ourtestdomain.nl"), dns::RRClass::IN, 172800,
      dns::NsRdata{dns::Name::parse("ns-fra.ourtestdomain.nl")}});
  m.additionals.push_back(dns::ResourceRecord{
      dns::Name::parse("ns-fra.ourtestdomain.nl"), dns::RRClass::IN, 172800,
      dns::ARdata{net::IpAddress::from_octets(10, 0, 0, 1)}});
  return m;
}

void BM_EncodeMessage(benchmark::State& state) {
  const dns::Message m = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::encode_message(m));
  }
}
BENCHMARK(BM_EncodeMessage);

void BM_DecodeMessage(benchmark::State& state) {
  const auto wire = dns::encode_message(sample_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::decode_message(wire));
  }
}
BENCHMARK(BM_DecodeMessage);

void BM_NameParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns::Name::parse("www.some.deep.example.nl"));
  }
}
BENCHMARK(BM_NameParse);

void BM_NameCompare(benchmark::State& state) {
  const auto a = dns::Name::parse("aaa.example.nl");
  const auto b = dns::Name::parse("aab.example.nl");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.compare(b));
  }
}
BENCHMARK(BM_NameCompare);

void BM_ZoneLookup(benchmark::State& state) {
  authns::Zone zone{dns::Name::parse("nl")};
  dns::SoaRdata soa;
  zone.add({zone.origin(), dns::RRClass::IN, 3600, soa});
  zone.add({zone.origin(), dns::RRClass::IN, 3600,
            dns::NsRdata{dns::Name::parse("ns1.dns.nl")}});
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    zone.add({dns::Name::parse("host" + std::to_string(i) + ".nl"),
              dns::RRClass::IN, 3600,
              dns::ARdata{net::IpAddress{static_cast<std::uint32_t>(i)}}});
  }
  const authns::QueryEngine engine{zone};
  const dns::Question q{dns::Name::parse("host7.nl"), dns::RRType::A,
                        dns::RRClass::IN};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.lookup(q));
  }
}
BENCHMARK(BM_ZoneLookup)->Arg(100)->Arg(10'000);

void BM_RecordCachePutGet(benchmark::State& state) {
  resolver::RecordCache cache;
  dns::RRset set;
  set.name = dns::Name::parse("x.nl");
  set.type = dns::RRType::A;
  set.ttl = 300;
  set.rdatas = {dns::ARdata{net::IpAddress{1}}};
  const net::SimTime now;
  for (auto _ : state) {
    cache.put(set, now);
    benchmark::DoNotOptimize(cache.get(set.name, set.type, now));
  }
}
BENCHMARK(BM_RecordCachePutGet);

void BM_InfraCacheUpdate(benchmark::State& state) {
  resolver::InfraCache cache;
  const net::SimTime now;
  std::uint32_t i = 0;
  for (auto _ : state) {
    cache.report_rtt(net::IpAddress{i++ % 16}, net::Duration::millis(40),
                     now);
  }
}
BENCHMARK(BM_InfraCacheUpdate);

void BM_Selection(benchmark::State& state) {
  const auto kind = static_cast<resolver::PolicyKind>(state.range(0));
  auto sel = resolver::make_selector(kind);
  resolver::InfraCache infra;
  stats::Rng rng{1};
  const dns::Name zone = dns::Name::parse("nl");
  std::vector<net::IpAddress> servers;
  for (std::uint32_t i = 1; i <= 8; ++i) {
    servers.push_back(net::IpAddress{i});
    infra.report_rtt(net::IpAddress{i},
                     net::Duration::millis(20.0 + 30.0 * i), {});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sel->select(zone, servers, infra, {}, rng));
  }
}
BENCHMARK(BM_Selection)
    ->Arg(static_cast<int>(resolver::PolicyKind::BindSrtt))
    ->Arg(static_cast<int>(resolver::PolicyKind::UnboundBand))
    ->Arg(static_cast<int>(resolver::PolicyKind::UniformRandom));

void BM_EventLoop(benchmark::State& state) {
  for (auto _ : state) {
    net::Simulation sim{1};
    for (int i = 0; i < 1'000; ++i) {
      sim.after(net::Duration::micros(i), [] {});
    }
    sim.run();
  }
}
BENCHMARK(BM_EventLoop);

void BM_NetworkDatagram(benchmark::State& state) {
  net::Simulation sim{1};
  net::LatencyParams params;
  params.loss_rate = 0;
  net::Network network{sim, params};
  const auto a = network.add_node("a", net::find_location("FRA")->point);
  const auto b = network.add_node("b", net::find_location("AMS")->point);
  const net::Endpoint ep{network.allocate_address(), 53};
  network.listen(b, ep, [](const net::Datagram&, net::NodeId) {});
  for (auto _ : state) {
    network.send(a, net::Endpoint{}, ep, {1, 2, 3});
    sim.run();
  }
}
BENCHMARK(BM_NetworkDatagram);

}  // namespace

BENCHMARK_MAIN();
