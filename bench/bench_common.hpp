// Shared scaffolding for the paper-reproduction bench binaries.
//
// Every bench accepts:
//   --probes N   vantage points (default 2000; the paper saw ~8700)
//   --seed S     simulation seed (default 42)
//   --policy P   run with a single-policy population instead of the
//                calibrated wild() mixture (ablation; P = bind_srtt, ...)
//   --obs FILE   export the run's metric registry as merge-safe JSON
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"

#include "experiment/analysis.hpp"
#include "experiment/campaign.hpp"
#include "experiment/report.hpp"
#include "experiment/testbed.hpp"

namespace recwild::benchutil {

struct Options {
  std::size_t probes = 2'000;
  std::uint64_t seed = 42;
  std::string policy;    // empty = wild mixture
  std::string obs_path;  // empty = no metrics export

  static Options parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
      auto arg = [&](const char* flag) -> const char* {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
          return argv[++i];
        }
        return nullptr;
      };
      if (const char* v = arg("--probes")) {
        opt.probes = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
      } else if (const char* v2 = arg("--seed")) {
        opt.seed = std::strtoull(v2, nullptr, 10);
      } else if (const char* v3 = arg("--policy")) {
        opt.policy = v3;
      } else if (const char* v4 = arg("--obs")) {
        opt.obs_path = v4;
      }
    }
    return opt;
  }
};

/// The standard config for a Table-1 combination.
inline experiment::TestbedConfig make_config(const Options& opt,
                                             const std::string& combo_id) {
  experiment::TestbedConfig cfg;
  cfg.seed = opt.seed;
  cfg.population.probes = opt.probes;
  cfg.test_sites = experiment::combination(combo_id).sites;
  if (!opt.policy.empty()) {
    const auto kind = resolver::policy_from_string(opt.policy);
    if (!kind) {
      std::fprintf(stderr, "unknown --policy %s\n", opt.policy.c_str());
      std::exit(2);
    }
    cfg.population.mixture = resolver::PolicyMixture::pure(*kind);
    cfg.population.public_resolvers = 0;
    cfg.population.public_resolver_fraction = 0.0;
  }
  return cfg;
}

/// Builds the standard testbed for a Table-1 combination.
inline experiment::Testbed make_testbed(const Options& opt,
                                        const std::string& combo_id) {
  return experiment::Testbed{make_config(opt, combo_id)};
}

/// Honours --obs: writes the snapshot as merge-safe JSON (byte-identical
/// for every shard count) and reports the path on stdout.
inline void export_obs(const Options& opt, const obs::MetricsSnapshot& m) {
  if (opt.obs_path.empty()) return;
  std::ofstream out{opt.obs_path};
  m.write_json(out, obs::SnapshotStyle::MergeSafe);
  out << "\n";
  std::printf("metrics -> %s\n", opt.obs_path.c_str());
}

/// The paper's 1-hour 2-minute campaign.
inline experiment::CampaignConfig paper_campaign() {
  experiment::CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 31;
  return cc;
}

}  // namespace recwild::benchutil
