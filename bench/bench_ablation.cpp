// Ablations for the design choices DESIGN.md §5 calls out. Each block
// reruns the combination-2C preference analysis with one knob swept:
//
//  1. policy mixture   — each pure policy vs the calibrated wild() mix
//                        (which components create weak/strong preference);
//  2. jitter fraction  — the RTT-proportional noise that makes far-away
//                        VPs indifferent (paper §4.3's >150 ms effect);
//  3. infra-cache TTL  — BIND's 10 min vs Unbound's 15 min vs extremes
//                        (what drives the §4.4 interval persistence).
#include "bench_common.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

PreferenceStats run_once(const benchutil::Options& opt, TestbedConfig cfg,
                         const char* combo = "2C") {
  cfg.seed = opt.seed;
  cfg.population.probes = opt.probes;
  cfg.test_sites = combination(combo).sites;
  Testbed tb{cfg};
  return analyze_preferences(run_campaign(tb, benchutil::paper_campaign()));
}

double continent_share(const PreferenceStats& prefs, net::Continent c,
                       std::size_t service) {
  for (const auto& cp : prefs.continents) {
    if (cp.continent == c && service < cp.query_share.size()) {
      return cp.query_share[service];
    }
  }
  return 0;
}

void print_row(const char* label, const PreferenceStats& prefs) {
  const double eu_fra =
      continent_share(prefs, net::Continent::Europe, 0);  // FRA idx 0 in 2C
  std::printf("%-24s %8s %8s %12.0f%% %9zu\n", label,
              report::pct(prefs.weak_fraction).c_str(),
              report::pct(prefs.strong_fraction).c_str(), eu_fra * 100,
              prefs.vps.size());
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = benchutil::Options::parse(argc, argv);
  if (opt.probes == 2'000) opt.probes = 800;  // many runs; keep it brisk

  report::header("Ablation 1: selection-policy mixture (2C)");
  std::printf("%-24s %8s %8s %13s %9s\n", "population", "weak", "strong",
              "EU->FRA share", "coverers");
  {
    TestbedConfig cfg;
    print_row("wild mixture (default)", run_once(opt, cfg));
  }
  for (const auto kind :
       {resolver::PolicyKind::BindSrtt, resolver::PolicyKind::UnboundBand,
        resolver::PolicyKind::PowerDnsFactor,
        resolver::PolicyKind::UniformRandom, resolver::PolicyKind::RoundRobin,
        resolver::PolicyKind::StickyFirst}) {
    TestbedConfig cfg;
    cfg.population.mixture = resolver::PolicyMixture::pure(kind);
    cfg.population.public_resolvers = 0;
    cfg.population.public_resolver_fraction = 0;
    print_row(std::string{to_string(kind)}.c_str(), run_once(opt, cfg));
  }
  std::printf("(paper: weak 69%%, strong 37%% — between the pure "
              "latency-driven and pure random rows; a pure forwarder "
              "population never covers both NSes, hence the empty "
              "sticky_first row)\n");

  report::header(
      "Ablation 2: per-packet jitter fraction (2B, far-away effect)");
  std::printf("%-24s %13s %13s\n", "jitter",
              "EU->FRA share", "AS->FRA share");
  for (const double jitter : {0.0, 0.01, 0.03, 0.08, 0.2}) {
    TestbedConfig cfg;
    cfg.latency.jitter_frac = jitter;
    const auto prefs = run_once(opt, cfg, "2B");
    char label[32];
    std::snprintf(label, sizeof label, "jitter_frac = %.2f", jitter);
    // FRA is service index 1 in 2B (DUB, FRA).
    std::printf("%-24s %12.0f%% %12.0f%%\n", label,
                continent_share(prefs, net::Continent::Europe, 1) * 100,
                continent_share(prefs, net::Continent::Asia, 1) * 100);
  }
  std::printf("(finding: the aggregate split is ROBUST to per-packet "
              "jitter — preferences are set by the stable per-path RTT "
              "ordering. Far-away continents split ~50/50 because which "
              "NS is 'faster' from >150 ms away is path-idiosyncratic "
              "rather than geographic, exactly the §4.3 far-away "
              "indifference)\n");

  report::header("Ablation 3: infrastructure-cache TTL (2C)");
  std::printf("%-24s %8s %8s %13s %9s\n", "infra TTL", "weak", "strong",
              "EU->FRA share", "coverers");
  for (const double ttl_min : {1.0, 10.0, 15.0, 120.0}) {
    TestbedConfig cfg;
    cfg.population.resolver_template.infra.entry_ttl =
        net::Duration::minutes(ttl_min);
    char label[32];
    std::snprintf(label, sizeof label, "%.0f min", ttl_min);
    print_row(label, run_once(opt, cfg));
  }
  std::printf("(at 2-minute probing the cache stays warm in every row; "
              "the TTL matters at long intervals — see bench_fig6)\n");
  return 0;
}
