// §3.1 IPv6 verification: "we verify that our results apply to IPv6 by
// repeating a subset of our measurements there ... recursives follow the
// same strategy when querying via IPv6." (The paper omits the graph for
// space; this bench regenerates the comparison.)
//
// Runs the combination-2C campaign twice on a dual-stack testbed: once
// with a v4-only recursive population, once with every ISP recursive
// dual-stack (choosing among the NSes' v4 AND v6 addresses). The
// preference statistics must agree.
#include "bench_common.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

PreferenceStats run(const benchutil::Options& opt, double ipv6_fraction) {
  TestbedConfig cfg;
  cfg.seed = opt.seed;
  cfg.population.probes = opt.probes;
  cfg.population.ipv6_fraction = ipv6_fraction;
  cfg.test_sites = combination("2C").sites;
  cfg.dual_stack = true;
  Testbed tb{cfg};
  return analyze_preferences(run_campaign(tb, benchutil::paper_campaign()));
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = benchutil::Options::parse(argc, argv);
  if (opt.probes == 2'000) opt.probes = 1'200;

  report::header("IPv6 verification (paper §3.1), combination 2C");
  std::printf("%-22s %10s %10s %14s\n", "population", "weak>=60%",
              "strong>=90%", "RTT-following");
  for (const double frac : {0.0, 1.0}) {
    const auto prefs = run(opt, frac);
    std::printf("%-22s %10s %10s %14s\n",
                frac == 0.0 ? "IPv4-only recursives"
                            : "dual-stack recursives",
                report::pct(prefs.weak_fraction).c_str(),
                report::pct(prefs.strong_fraction).c_str(),
                report::pct(prefs.rtt_following_fraction).c_str());
  }
  std::printf("\n(shape check: rows agree — recursives follow the same "
              "selection strategy over IPv6)\n");
  return 0;
}
