// Shard-count scaling of the campaign engine.
//
// Builds the immutable WorldSnapshot ONCE (timed as the world-build phase),
// then runs the paper's 1-hour campaign once per shard count on replicas
// materialized from that shared world. Reports per-phase wall-clock
// (world build / materialize / partition / shard run / merge), per-shard
// VP counts and resident-set samples, and cross-checks that every shard
// count exports byte-identical results (the engine's determinism
// guarantee).
//
//   ./build/bench/bench_parallel_campaign --probes 10000 --seed 42
//   ./build/bench/bench_parallel_campaign --shards 1,2,4,8 --queries 31
//   ./build/bench/bench_parallel_campaign --json BENCH_campaign.json
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "experiment/export.hpp"
#include "obs/process.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

// Pre-fastpath wall-clock for the canonical configuration (10k probes,
// 31 queries/VP, seed 42, shards=1), measured on the seed revision of this
// repo on the same class of machine. The speedup gate in BENCH_campaign.json
// is computed against this constant.
constexpr double kBaselineWallS = 11.32;
constexpr std::size_t kBaselineProbes = 10'000;
constexpr std::size_t kBaselineQueries = 31;

std::string export_bytes(const CampaignResult& result) {
  std::ostringstream out;
  write_campaign_csv(out, result);
  write_preferences_csv(out, result);
  write_shares_csv(out, result);
  // The observability export is under the same determinism guarantee as
  // the analysis CSVs, so it joins the byte-identity cross-check.
  result.metrics.write_json(out, obs::SnapshotStyle::MergeSafe);
  return out.str();
}

double secs_between(std::chrono::steady_clock::time_point a,
                    std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct RunRecord {
  std::size_t shards = 0;
  double wall_s = 0.0;         // run_campaign() alone (comparable to baseline)
  double materialize_s = 0.0;  // Testbed replica construction from the world
  CampaignRunStats stats;
  bool byte_identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  auto opt = benchutil::Options::parse(argc, argv);
  if (opt.probes == 2'000) opt.probes = 10'000;  // bigger default here
  std::vector<std::size_t> shard_counts{1, 2, 4};
  std::size_t queries = 31;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts.clear();
      for (const char* p = argv[i + 1]; *p != '\0'; ++p) {
        if (*p >= '0' && *p <= '9') {
          std::size_t n = 0;
          while (*p >= '0' && *p <= '9') n = n * 10 + std::size_t(*p++ - '0');
          shard_counts.push_back(n);
          if (*p == '\0') break;
        }
      }
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  const unsigned cores = std::thread::hardware_concurrency();
  report::header("Parallel campaign scaling (combination 2C)");
  std::printf("%zu probes, %zu queries/VP, seed %llu, %u cores\n", opt.probes,
              queries, static_cast<unsigned long long>(opt.seed), cores);

  // One immutable world shared by every run below.
  const auto tw0 = std::chrono::steady_clock::now();
  const auto world = WorldSnapshot::build(benchutil::make_config(opt, "2C"));
  const auto tw1 = std::chrono::steady_clock::now();
  const double world_build_s = secs_between(tw0, tw1);
  {
    std::size_t largest = 0;
    for (const auto& g : world->vp_groups) largest = std::max(largest, g.size());
    std::printf(
        "world built in %.2fs; %zu independent VP groups; largest "
        "(public-resolver cluster) has %zu VPs (%.1f%% of load)\n",
        world_build_s, world->vp_groups.size(), largest,
        100.0 * double(largest) / double(opt.probes));
  }

  std::printf("\n%8s %12s %9s %10s %11s %s\n", "shards", "wall-clock",
              "speedup", "merge", "max-rss/sh", "result");
  double serial_s = 0.0;
  std::string reference;
  std::vector<RunRecord> runs;
  for (const std::size_t shards : shard_counts) {
    RunRecord rec;
    rec.shards = shards;

    const auto tm0 = std::chrono::steady_clock::now();
    Testbed tb{world};
    const auto tm1 = std::chrono::steady_clock::now();
    rec.materialize_s = secs_between(tm0, tm1);

    CampaignConfig cc;
    cc.interval = net::Duration::minutes(2);
    cc.queries_per_vp = queries;
    cc.shards = shards;
    cc.run_stats = &rec.stats;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = run_campaign(tb, cc);
    const auto t1 = std::chrono::steady_clock::now();
    rec.wall_s = secs_between(t0, t1);

    const std::string bytes = export_bytes(result);
    const char* verdict;
    if (reference.empty()) {
      reference = bytes;
      serial_s = rec.wall_s;
      verdict = "reference";
    } else {
      verdict = bytes == reference ? "byte-identical" : "MISMATCH vs shards=1";
    }
    rec.byte_identical = bytes == reference;
    std::size_t max_rss = 0;
    for (const auto& s : rec.stats.shards) max_rss = std::max(max_rss, s.rss_kb);
    std::printf("%8zu %10.2fs %8.2fx %9.3fs %9zuMB %s\n", shards, rec.wall_s,
                serial_s > 0 ? serial_s / rec.wall_s : 1.0, rec.stats.merge_s,
                max_rss / 1024, verdict);
    runs.push_back(std::move(rec));
    if (shards == shard_counts.front()) {
      benchutil::export_obs(opt, result.metrics);
    }
  }

  if (!json_path.empty()) {
    // The speedup-vs-baseline field is only meaningful on the canonical
    // configuration the baseline was measured with.
    const bool canonical =
        opt.probes == kBaselineProbes && queries == kBaselineQueries;
    const std::size_t total_queries = opt.probes * queries;
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"parallel_campaign\",\n"
                 "  \"combination\": \"2C\",\n"
                 "  \"probes\": %zu,\n"
                 "  \"queries_per_vp\": %zu,\n"
                 "  \"total_queries\": %zu,\n"
                 "  \"seed\": %llu,\n"
                 "  \"cores\": %u,\n"
                 "  \"world_build_s\": %.2f,\n"
                 "  \"peak_rss_kb\": %zu,\n"
                 "  \"baseline\": {\"wall_s\": %.2f, \"note\": "
                 "\"seed revision, shards=1, canonical config\"},\n"
                 "  \"runs\": [\n",
                 opt.probes, queries, total_queries,
                 static_cast<unsigned long long>(opt.seed), cores,
                 world_build_s, obs::peak_rss_kb(), kBaselineWallS);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& r = runs[i];
      std::fprintf(f,
                   "    {\"shards\": %zu, \"wall_s\": %.2f, "
                   "\"queries_per_s\": %.0f, ",
                   r.shards, r.wall_s, double(total_queries) / r.wall_s);
      if (canonical) {
        std::fprintf(f, "\"speedup_vs_baseline\": %.2f, ",
                     kBaselineWallS / r.wall_s);
      }
      std::fprintf(f,
                   "\"materialize_s\": %.2f, \"partition_s\": %.3f, "
                   "\"run_s\": %.2f, \"merge_s\": %.3f,\n"
                   "     \"shard_detail\": [",
                   r.materialize_s, r.stats.partition_s, r.stats.run_s,
                   r.stats.merge_s);
      for (std::size_t j = 0; j < r.stats.shards.size(); ++j) {
        const auto& s = r.stats.shards[j];
        std::fprintf(f, "%s{\"vps\": %zu, \"wall_s\": %.2f, \"rss_kb\": %zu}",
                     j > 0 ? ", " : "", s.vps, s.wall_s, s.rss_kb);
      }
      std::fprintf(f, "],\n     \"byte_identical\": %s}%s\n",
                   r.byte_identical ? "true" : "false",
                   i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json -> %s\n", json_path.c_str());
  }
  return 0;
}
