// Shard-count scaling of the campaign engine.
//
// Runs the paper's 1-hour campaign on a large Atlas-like population once
// per shard count, reports wall-clock time and speedup versus the serial
// run, and cross-checks that every shard count exports byte-identical
// results (the engine's determinism guarantee).
//
//   ./build/bench/bench_parallel_campaign --probes 10000 --seed 42
//   ./build/bench/bench_parallel_campaign --shards 1,2,4,8 --queries 31
#include <chrono>
#include <cstring>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "experiment/export.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

std::string export_bytes(const CampaignResult& result) {
  std::ostringstream out;
  write_campaign_csv(out, result);
  write_preferences_csv(out, result);
  write_shares_csv(out, result);
  // The observability export is under the same determinism guarantee as
  // the analysis CSVs, so it joins the byte-identity cross-check.
  result.metrics.write_json(out, obs::SnapshotStyle::MergeSafe);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = benchutil::Options::parse(argc, argv);
  if (opt.probes == 2'000) opt.probes = 10'000;  // bigger default here
  std::vector<std::size_t> shard_counts{1, 2, 4};
  std::size_t queries = 31;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shard_counts.clear();
      for (const char* p = argv[i + 1]; *p != '\0'; ++p) {
        if (*p >= '0' && *p <= '9') {
          std::size_t n = 0;
          while (*p >= '0' && *p <= '9') n = n * 10 + std::size_t(*p++ - '0');
          shard_counts.push_back(n);
          if (*p == '\0') break;
        }
      }
    } else if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc) {
      queries = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  report::header("Parallel campaign scaling (combination 2C)");
  std::printf("%zu probes, %zu queries/VP, seed %llu\n", opt.probes, queries,
              static_cast<unsigned long long>(opt.seed));
  {
    auto tb = benchutil::make_testbed(opt, "2C");
    const auto groups = campaign_vp_groups(tb);
    std::size_t largest = 0;
    for (const auto& g : groups) largest = std::max(largest, g.size());
    std::printf(
        "%zu independent VP groups; largest (public-resolver cluster) has "
        "%zu VPs (%.1f%% of load)\n",
        groups.size(), largest, 100.0 * double(largest) / double(opt.probes));
  }

  std::printf("\n%8s %12s %9s %s\n", "shards", "wall-clock", "speedup",
              "result");
  double serial_s = 0.0;
  std::string reference;
  for (const std::size_t shards : shard_counts) {
    auto tb = benchutil::make_testbed(opt, "2C");
    CampaignConfig cc;
    cc.interval = net::Duration::minutes(2);
    cc.queries_per_vp = queries;
    cc.shards = shards;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = run_campaign(tb, cc);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();

    const std::string bytes = export_bytes(result);
    const char* verdict;
    if (reference.empty()) {
      reference = bytes;
      serial_s = secs;
      verdict = "reference";
    } else {
      verdict = bytes == reference ? "byte-identical"
                                   : "MISMATCH vs shards=1";
    }
    std::printf("%8zu %10.2fs %8.2fx %s\n", shards, secs,
                serial_s > 0 ? serial_s / secs : 1.0, verdict);
    if (shards == shard_counts.front()) {
      benchutil::export_obs(opt, result.metrics);
    }
  }
  return 0;
}
