// Figure 6: influence of query frequency on selection (combination 2C,
// FRA + SYD). The probing interval sweeps 2/5/10/15/20/30 minutes; the
// series is the fraction of queries to FRA per continent.
//
// Paper shape: preference for the fast authoritative is strongest at
// 2-minute probing and weakens with longer intervals — but persists well
// beyond the nominal 10/15-minute infrastructure-cache TTLs of BIND and
// Unbound (sticky resolvers and re-learning keep it alive).
#include "bench_common.hpp"

using namespace recwild;
using namespace recwild::experiment;

int main(int argc, char** argv) {
  auto opt = benchutil::Options::parse(argc, argv);
  if (opt.probes == 2'000) opt.probes = 1'000;  // 6 campaigns; keep it quick

  const double intervals_min[] = {2, 5, 10, 15, 20, 30};
  report::header("Figure 6: fraction of queries to FRA (2C) vs interval");
  std::printf("%-9s", "interval");
  for (const net::Continent c : net::all_continents()) {
    std::printf(" %6s", std::string{net::continent_code(c)}.c_str());
  }
  std::printf(" %6s\n", "all");

  for (const double m : intervals_min) {
    auto tb = benchutil::make_testbed(opt, "2C");
    CampaignConfig cc;
    cc.interval = net::Duration::minutes(m);
    cc.queries_per_vp = 21;  // fixed query count for comparable statistics
    const auto result = run_campaign(tb, cc);
    const auto rows = fraction_to_service(result, 0);  // FRA is index 0
    const auto shares = analyze_shares(result);

    std::printf("%6.0fmin", m);
    for (const net::Continent c : net::all_continents()) {
      double value = -1;
      for (const auto& [cont, frac] : rows) {
        if (cont == c) value = frac;
      }
      if (value < 0) {
        std::printf(" %6s", "-");
      } else {
        std::printf(" %5.0f%%", value * 100);
      }
    }
    std::printf(" %5.0f%%\n", shares.query_share[0] * 100);
  }
  std::printf("\n(paper: EU ~80%%+ at 2 min, decaying but persisting at 30 "
              "min; OC consistently low because SYD is closer)\n");
  return 0;
}
