// Figure 2: queries needed (after the first) until a recursive has probed
// ALL authoritatives of the deployment; x-axis labels give the share of
// recursives that probe all.
//
// Paper shape: 75-96% probe all; with 2 NSes the median is ~1-2 extra
// queries, with 4 NSes the median rises to ~7.
#include "bench_common.hpp"

using namespace recwild;
using namespace recwild::experiment;

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);
  report::header("Figure 2: queries to probe all authoritatives");
  std::printf("%-5s %-10s %-55s\n", "combo", "cover-all",
              "queries after first (box: p10/p25/p50/p75/p90)");

  for (const auto& combo : table1_combinations()) {
    auto tb = benchutil::make_testbed(opt, combo.id);
    const auto result = run_campaign(tb, benchutil::paper_campaign());
    const auto cov = analyze_coverage(result);
    std::printf("%-5s %-10s %s\n", combo.id.c_str(),
                report::pct(cov.covering_fraction).c_str(),
                cov.queries_to_cover
                    ? report::box(*cov.queries_to_cover, 0).c_str()
                    : "(no VP covered all)");
  }
  std::printf("\n(paper x-labels: 2A 96.0%%, 2B 95.5%%, 2C 82.4%%, "
              "3A 91.3%%, 3B 84.8%%, 4A 94.7%%, 4B 75.2%%)\n");
  return 0;
}
