// Datapath micro-benchmark: codec allocations and latency, old vs new.
//
// Measures the wire codec three ways over a corpus of campaign-shaped
// messages (queries with EDNS, referrals with glue, authoritative answers,
// CNAME chains, negative responses):
//
//   legacy    — a frozen copy of the pre-fastpath encoder (fresh vector per
//               message, unordered_map<string> compression table), kept here
//               verbatim as the baseline and as a differential oracle: its
//               output is asserted byte-identical to the new encoder on
//               every corpus message before anything is timed.
//   unpooled  — the new single-pass encoder with WireBufferPool disabled
//               (isolates the encoder rewrite from the pooling).
//   pooled    — the production configuration.
//
// Allocation counts come from global operator new/delete overrides that are
// linked into THIS binary only — the library itself carries no counting.
//
//   ./build/bench/bench_datapath --iters 20000 --json BENCH_datapath.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "dnscore/codec.hpp"
#include "dnscore/message.hpp"
#include "net/wire_buffer.hpp"

// ---------------------------------------------------------------------------
// Allocation hooks (this binary only).

namespace {
std::uint64_t g_allocs = 0;  // single-threaded bench; no atomics needed
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n != 0 ? n : 1) != 0) {
    throw std::bad_alloc{};
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace recwild::dns {
namespace {

// ---------------------------------------------------------------------------
// Frozen legacy encoder (pre-fastpath). Do not "fix" or modernize: its value
// is being exactly the old code. Fresh std::vector per message, suffix keys
// as lowered dotted strings in an unordered_map, first-occurrence wins.

class LegacyWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void bytes(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }
  void name(const Name& n, bool compress = true) {
    for (std::size_t i = 0; i < n.label_count(); ++i) {
      if (compress) {
        const std::string key = suffix_key(n, i);
        const auto it = suffix_offsets_.find(key);
        if (it != suffix_offsets_.end()) {
          u16(static_cast<std::uint16_t>(0xc000 | it->second));
          return;
        }
        if (buf_.size() <= 0x3fff) {
          suffix_offsets_.emplace(key,
                                  static_cast<std::uint16_t>(buf_.size()));
        }
      }
      const std::string& label = n.label(i);
      u8(static_cast<std::uint8_t>(label.size()));
      bytes({reinterpret_cast<const std::uint8_t*>(label.data()),
             label.size()});
    }
    u8(0);
  }
  void char_string(std::string_view s) {
    u8(static_cast<std::uint8_t>(s.size()));
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  static std::string suffix_key(const Name& n, std::size_t from) {
    std::string key;
    for (std::size_t i = from; i < n.label_count(); ++i) {
      for (const char c : n.label(i)) key.push_back(Name::to_lower(c));
      key.push_back('.');
    }
    return key;
  }

  std::vector<std::uint8_t> buf_;
  std::unordered_map<std::string, std::uint16_t> suffix_offsets_;
};

void legacy_encode_rdata(LegacyWriter& w, const Rdata& rdata) {
  std::visit(
      [&w](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          w.u32(v.address.bits());
        } else if constexpr (std::is_same_v<T, AaaaRdata>) {
          w.bytes(v.address);
        } else if constexpr (std::is_same_v<T, NsRdata>) {
          w.name(v.nsdname);
        } else if constexpr (std::is_same_v<T, CnameRdata>) {
          w.name(v.target);
        } else if constexpr (std::is_same_v<T, PtrRdata>) {
          w.name(v.target);
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          w.name(v.mname);
          w.name(v.rname);
          w.u32(v.serial);
          w.u32(v.refresh);
          w.u32(v.retry);
          w.u32(v.expire);
          w.u32(v.minimum);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          w.u16(v.preference);
          w.name(v.exchange);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : v.strings) w.char_string(s);
        } else if constexpr (std::is_same_v<T, SrvRdata>) {
          w.u16(v.priority);
          w.u16(v.weight);
          w.u16(v.port);
          w.name(v.target, /*compress=*/false);
        } else if constexpr (std::is_same_v<T, OptRdata>) {
          for (const auto& opt : v.options) {
            w.u16(opt.code);
            w.u16(static_cast<std::uint16_t>(opt.data.size()));
            w.bytes(opt.data);
          }
        } else if constexpr (std::is_same_v<T, CaaRdata>) {
          w.u8(v.flags);
          w.char_string(v.tag);
          w.bytes({reinterpret_cast<const std::uint8_t*>(v.value.data()),
                   v.value.size()});
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          w.bytes(v.data);
        }
      },
      rdata);
}

std::uint16_t legacy_pack_flags(const Header& h) {
  std::uint16_t flags = 0;
  if (h.qr) flags |= 0x8000;
  flags |= static_cast<std::uint16_t>((static_cast<unsigned>(h.opcode) & 0xf)
                                      << 11);
  if (h.aa) flags |= 0x0400;
  if (h.tc) flags |= 0x0200;
  if (h.rd) flags |= 0x0100;
  if (h.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(static_cast<unsigned>(h.rcode) & 0xf);
  return flags;
}

void legacy_encode_record(LegacyWriter& w, const ResourceRecord& rr) {
  w.name(rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type()));
  w.u16(static_cast<std::uint16_t>(rr.rrclass));
  w.u32(rr.ttl);
  const std::size_t rdlength_at = w.size();
  w.u16(0);
  const std::size_t rdata_start = w.size();
  legacy_encode_rdata(w, rr.rdata);
  w.patch_u16(rdlength_at,
              static_cast<std::uint16_t>(w.size() - rdata_start));
}

std::vector<std::uint8_t> legacy_encode_message(const Message& m) {
  LegacyWriter w;
  const std::size_t arcount =
      m.additionals.size() + (m.edns.has_value() ? 1 : 0);
  w.u16(m.header.id);
  w.u16(legacy_pack_flags(m.header));
  w.u16(static_cast<std::uint16_t>(m.questions.size()));
  w.u16(static_cast<std::uint16_t>(m.answers.size()));
  w.u16(static_cast<std::uint16_t>(m.authorities.size()));
  w.u16(static_cast<std::uint16_t>(arcount));
  for (const auto& q : m.questions) {
    w.name(q.qname);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : m.answers) legacy_encode_record(w, rr);
  for (const auto& rr : m.authorities) legacy_encode_record(w, rr);
  for (const auto& rr : m.additionals) legacy_encode_record(w, rr);
  if (m.edns) {
    w.name(Name{});
    w.u16(static_cast<std::uint16_t>(RRType::OPT));
    w.u16(m.edns->udp_payload_size);
    std::uint32_t ttl = (std::uint32_t{m.edns->extended_rcode} << 24) |
                        (std::uint32_t{m.edns->version} << 16);
    if (m.edns->dnssec_ok) ttl |= 0x8000;
    w.u32(ttl);
    const std::size_t rdlength_at = w.size();
    w.u16(0);
    const std::size_t rdata_start = w.size();
    legacy_encode_rdata(w, Rdata{m.edns->options});
    w.patch_u16(rdlength_at,
                static_cast<std::uint16_t>(w.size() - rdata_start));
  }
  return std::move(w).take();
}

// ---------------------------------------------------------------------------
// Corpus: the message shapes campaign traffic is made of.

std::vector<Message> build_corpus() {
  std::vector<Message> corpus;

  // Iterative query with EDNS, unique-label style qname (paper §3.1).
  Message query = Message::make_query(0x4242,
                                      Name::parse("p91.vp17.recwild-test.nl"),
                                      RRType::A);
  query.edns = EdnsInfo{};
  corpus.push_back(query);

  const Name zone = Name::parse("recwild-test.nl");
  const Name ns1 = Name::parse("ns1.recwild-test.nl");
  const Name ns2 = Name::parse("ns2.recwild-test.nl");

  // Referral: empty answer, NS authority, glue additionals.
  Message referral = Message::make_response(query);
  referral.authorities.push_back(
      ResourceRecord{zone, RRClass::IN, 172800, NsRdata{ns1}});
  referral.authorities.push_back(
      ResourceRecord{zone, RRClass::IN, 172800, NsRdata{ns2}});
  referral.additionals.push_back(ResourceRecord{
      ns1, RRClass::IN, 172800, ARdata{net::IpAddress::from_octets(10, 0, 0, 1)}});
  referral.additionals.push_back(ResourceRecord{
      ns2, RRClass::IN, 172800, ARdata{net::IpAddress::from_octets(10, 0, 0, 2)}});
  referral.edns = EdnsInfo{};
  corpus.push_back(referral);

  // Authoritative answer with NS + glue.
  Message answer = Message::make_response(query);
  answer.header.aa = true;
  answer.answers.push_back(ResourceRecord{
      query.question().qname, RRClass::IN, 5,
      ARdata{net::IpAddress::from_octets(10, 9, 8, 7)}});
  answer.authorities.push_back(
      ResourceRecord{zone, RRClass::IN, 172800, NsRdata{ns1}});
  answer.additionals.push_back(ResourceRecord{
      ns1, RRClass::IN, 172800, ARdata{net::IpAddress::from_octets(10, 0, 0, 1)}});
  answer.edns = EdnsInfo{};
  corpus.push_back(answer);

  // CNAME chain.
  Message chain = Message::make_response(query);
  chain.header.aa = true;
  chain.answers.push_back(
      ResourceRecord{query.question().qname, RRClass::IN, 300,
                     CnameRdata{Name::parse("alias.recwild-test.nl")}});
  chain.answers.push_back(ResourceRecord{
      Name::parse("alias.recwild-test.nl"), RRClass::IN, 300,
      ARdata{net::IpAddress::from_octets(10, 1, 2, 3)}});
  corpus.push_back(chain);

  // NXDOMAIN with SOA (negative caching, RFC 2308).
  Message nxdomain = Message::make_response(query);
  nxdomain.header.aa = true;
  nxdomain.header.rcode = Rcode::NxDomain;
  SoaRdata soa;
  soa.mname = ns1;
  soa.rname = Name::parse("hostmaster.recwild-test.nl");
  soa.serial = 2017031501;
  soa.refresh = 7200;
  soa.retry = 3600;
  soa.expire = 1209600;
  soa.minimum = 300;
  nxdomain.authorities.push_back(
      ResourceRecord{zone, RRClass::IN, 300, Rdata{soa}});
  corpus.push_back(nxdomain);

  // TXT answer (CH-class hostname.bind style payloads ride this shape too).
  Message txt = Message::make_response(query);
  txt.header.aa = true;
  txt.answers.push_back(ResourceRecord{query.question().qname, RRClass::IN,
                                       60, TxtRdata{{"recwild", "datapath"}}});
  corpus.push_back(txt);

  return corpus;
}

struct ModeResult {
  double allocs_per_op = 0.0;
  double ns_per_op = 0.0;
};

template <typename EncodeFn>
ModeResult measure(const std::vector<Message>& corpus, std::size_t iters,
                   EncodeFn&& encode_one) {
  // Warm-up pass (pool fill, cache warm); not counted.
  for (const Message& m : corpus) encode_one(m);
  g_allocs = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    encode_one(corpus[i % corpus.size()]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  ModeResult r;
  r.allocs_per_op = double(g_allocs) / double(iters);
  r.ns_per_op =
      std::chrono::duration<double, std::nano>(t1 - t0).count() /
      double(iters);
  return r;
}

}  // namespace
}  // namespace recwild::dns

int main(int argc, char** argv) {
  using namespace recwild;
  using namespace recwild::dns;

  std::size_t iters = 20'000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const std::vector<Message> corpus = build_corpus();

  // Differential oracle: the frozen legacy encoder and the new single-pass
  // encoder must agree byte-for-byte on every corpus message, and the new
  // bytes must decode back to a message that re-encodes identically.
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::vector<std::uint8_t> legacy = legacy_encode_message(corpus[i]);
    const net::WireBuffer fast = encode_message(corpus[i]);
    if (!(fast == legacy)) {
      std::fprintf(stderr,
                   "DIFFERENTIAL MISMATCH on corpus message %zu "
                   "(legacy %zu bytes, fastpath %zu bytes)\n",
                   i, legacy.size(), fast.size());
      return 1;
    }
    const Message round = decode_message(fast);
    const net::WireBuffer again = encode_message(round);
    if (!(again == legacy)) {
      std::fprintf(stderr, "ROUND-TRIP MISMATCH on corpus message %zu\n", i);
      return 1;
    }
  }
  std::printf("differential: %zu/%zu corpus messages byte-identical\n",
              corpus.size(), corpus.size());

  // Legacy: fresh vector + string-keyed compression map per message.
  const auto legacy = measure(corpus, iters, [](const Message& m) {
    const std::vector<std::uint8_t> wire = legacy_encode_message(m);
    (void)wire;
  });

  // New encoder, pool off: isolates the single-pass rewrite.
  net::WireBufferPool::set_enabled(false);
  net::WireBufferPool::clear();
  const auto unpooled = measure(corpus, iters, [](const Message& m) {
    const net::WireBuffer wire = encode_message(m);
    (void)wire;
  });

  // Production configuration: pooled buffers, single-pass encoder.
  net::WireBufferPool::set_enabled(true);
  net::WireBufferPool::clear();
  const auto pooled = measure(corpus, iters, [](const Message& m) {
    const net::WireBuffer wire = encode_message(m);
    (void)wire;
  });

  // The acceptance gate is allocs/encode reduced >= 5x. The single-pass
  // encoder alone (pool disabled) clears it; a pooled steady-state encode
  // is typically allocation-free, so its ratio is reported only when the
  // denominator is nonzero.
  const double reduction_encoder =
      legacy.allocs_per_op / std::max(unpooled.allocs_per_op, 1e-9);
  const bool pooled_alloc_free = pooled.allocs_per_op == 0.0;
  const double reduction_pooled =
      pooled_alloc_free ? 0.0 : legacy.allocs_per_op / pooled.allocs_per_op;

  std::printf("%-28s %14s %12s\n", "mode", "allocs/encode", "ns/encode");
  std::printf("%-28s %14.3f %12.1f\n", "legacy (map + fresh vector)",
              legacy.allocs_per_op, legacy.ns_per_op);
  std::printf("%-28s %14.3f %12.1f\n", "fastpath, pool disabled",
              unpooled.allocs_per_op, unpooled.ns_per_op);
  std::printf("%-28s %14.3f %12.1f\n", "fastpath, pooled",
              pooled.allocs_per_op, pooled.ns_per_op);
  std::printf("alloc reduction, encoder alone: %.1fx\n", reduction_encoder);
  if (pooled_alloc_free) {
    std::printf("alloc reduction, pooled: allocation-free steady state\n");
  } else {
    std::printf("alloc reduction, pooled: %.1fx\n", reduction_pooled);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"datapath\",\n"
                 "  \"corpus_messages\": %zu,\n"
                 "  \"iterations\": %zu,\n"
                 "  \"differential\": \"byte-identical\",\n"
                 "  \"modes\": {\n"
                 "    \"legacy_map_encoder\": "
                 "{\"allocs_per_encode\": %.3f, \"ns_per_encode\": %.1f},\n"
                 "    \"fastpath_pool_disabled\": "
                 "{\"allocs_per_encode\": %.3f, \"ns_per_encode\": %.1f},\n"
                 "    \"fastpath_pooled\": "
                 "{\"allocs_per_encode\": %.3f, \"ns_per_encode\": %.1f}\n"
                 "  },\n"
                 "  \"alloc_reduction_encoder_alone\": %.1f,\n"
                 "  \"pooled_allocation_free\": %s\n"
                 "}\n",
                 corpus.size(), iters, legacy.allocs_per_op, legacy.ns_per_op,
                 unpooled.allocs_per_op, unpooled.ns_per_op,
                 pooled.allocs_per_op, pooled.ns_per_op, reduction_encoder,
                 pooled_alloc_free ? "true" : "false");
    std::fclose(f);
    std::printf("json -> %s\n", json_path.c_str());
  }
  return 0;
}
