// Figure 4 + Table 2: per-recursive query distribution between two
// authoritatives, by continent, for combinations 2A / 2B / 2C; the weak
// (>=60%) and strong (>=90%) preference shares; and Table 2's per-continent
// query share / median RTT rows.
//
// Paper shape: weak preference 61% (2A), 59% (2B), 69% (2C); strong 10%,
// 12%, 37%. Distribution of queries inversely proportional to RTT: EU
// prefers FRA over SYD (83%/17%), OC the opposite (22%/78%).
//
// Ablation: pass --policy bind_srtt (etc.) to see how a single-policy
// population would look instead of the calibrated wild mixture.
#include "bench_common.hpp"

using namespace recwild;
using namespace recwild::experiment;

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);
  if (!opt.policy.empty()) {
    std::printf("[ablation: pure policy population '%s']\n",
                opt.policy.c_str());
  }

  for (const char* combo_id : {"2A", "2B", "2C"}) {
    auto tb = benchutil::make_testbed(opt, combo_id);
    const auto result = run_campaign(tb, benchutil::paper_campaign());
    const auto prefs = analyze_preferences(result);

    report::header(std::string{"Figure 4 / Table 2, combination "} +
                   combo_id);
    std::printf("VPs with hot-cache coverage: %zu\n", prefs.vps.size());
    std::printf("weak preference (>=60%% to one NS):   %s   (paper: "
                "2A 61%%, 2B 59%%, 2C 69%%)\n",
                report::pct(prefs.weak_fraction).c_str());
    std::printf("strong preference (>=90%% to one NS): %s   (paper: "
                "2A 10%%, 2B 12%%, 2C 37%%)\n",
                report::pct(prefs.strong_fraction).c_str());
    std::printf("RTT-following among VPs with >=50 ms RTT gap: %s "
                "(n=%zu; paper: ~half of recursives are latency-driven)\n",
                report::pct(prefs.rtt_following_fraction).c_str(),
                prefs.rtt_eligible_vps);

    std::printf("\nTable 2 rows — %% of queries and median RTT (ms):\n");
    std::printf("%-4s %6s", "cont", "VPs");
    for (const auto& code : result.service_codes) {
      std::printf(" | %7s %%  RTT", code.c_str());
    }
    std::printf("\n");
    for (const auto& cp : prefs.continents) {
      if (cp.vp_count == 0) continue;
      std::printf("%-4s %6zu",
                  std::string{net::continent_code(cp.continent)}.c_str(),
                  cp.vp_count);
      for (std::size_t s = 0; s < result.service_codes.size(); ++s) {
        std::printf(" | %8.0f%% %4.0f", cp.query_share[s] * 100,
                    cp.median_rtt_ms[s]);
      }
      std::printf("\n");
    }
  }
  return 0;
}
