// Figure 3: median RTT per authoritative location (top) and the share of
// queries each authoritative receives per combination (bottom).
//
// Paper shape: lower-RTT authoritatives receive more queries; FRA (51 ms
// median) always receives the most queries of its combination.
#include "bench_common.hpp"

using namespace recwild;
using namespace recwild::experiment;

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);

  stats::Sample rtt_by_loc[7];
  const char* locations[] = {"FRA", "DUB", "IAD", "SFO", "GRU", "NRT",
                             "SYD"};

  report::header("Figure 3 (bottom): query share per combination");
  std::printf("%-5s  %s\n", "combo", "per-authoritative share (hot cache)");
  for (const auto& combo : table1_combinations()) {
    auto tb = benchutil::make_testbed(opt, combo.id);
    const auto result = run_campaign(tb, benchutil::paper_campaign());
    const auto shares = analyze_shares(result);
    std::printf("%-5s ", combo.id.c_str());
    for (std::size_t s = 0; s < shares.codes.size(); ++s) {
      std::printf(" %s=%5.1f%%", shares.codes[s].c_str(),
                  shares.query_share[s] * 100);
    }
    std::printf("\n");
    // Feed the RTT-by-location sample (top plot).
    for (std::size_t s = 0; s < shares.codes.size(); ++s) {
      for (std::size_t l = 0; l < 7; ++l) {
        if (shares.codes[s] == locations[l]) {
          rtt_by_loc[l].add(shares.median_rtt_ms[s]);
        }
      }
    }
  }

  report::header("Figure 3 (top): median RTT per location");
  std::printf("%-5s %12s   (median across combinations)\n", "loc",
              "median RTT");
  for (std::size_t l = 0; l < 7; ++l) {
    if (rtt_by_loc[l].empty()) continue;
    std::printf("%-5s %12s   %s\n", locations[l],
                report::ms(rtt_by_loc[l].median()).c_str(),
                report::bar(rtt_by_loc[l].median() / 400.0, 40).c_str());
  }
  std::printf("\n(paper: FRA ~51 ms and always the biggest share; "
              "SYD/GRU/NRT 200-350 ms)\n");
  return 0;
}
