// Anycast failover bench (docs/ANYCAST.md; paper §7 "Other
// Considerations").
//
// For each site inventory — a 13-site root-letter-like deployment and a
// 3-site regional one — a worldwide client population queries one anycast
// service (and a single-site unicast control at the same primary location)
// on a steady clock. Mid-run the service's most popular site withdraws its
// BGP announcement (fault::FaultKind::SiteWithdraw): queries launched
// during convergence die in the dead path and recover via client
// retransmission; converged clients fail over transparently to their
// next-best site.
//
// Reported per inventory, all from one deterministic seeded simulation:
//   * steady-state and failover-phase query latency p50/p99 (client view,
//     retransmissions included),
//   * the anycast-vs-unicast latency gap (unicast p50 - anycast p50),
//   * catchment-shift and convergence-loss counts, and the
//     anycast.failover.latency_ms histogram percentiles.
//
// `--json FILE` emits BENCH_anycast.json; CI's nightly bench gates on the
// 13-site inventory keeping its failover-phase p99 within 2x the
// steady-state p99 (the engineered-anycast claim: a withdrawal is a
// bounded blip, not an outage).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "anycast/service.hpp"
#include "dnscore/codec.hpp"
#include "fault/injector.hpp"
#include "obs/names.hpp"
#include "stats/summary.hpp"

using namespace recwild;

namespace {

constexpr const char* kZoneText = R"(
@ IN SOA ns1 hostmaster 1 14400 3600 1209600 300
@ IN NS ns1
ns1 IN A 192.0.2.1
* 5 IN TXT "anycast-bench"
)";

// The run's timeline (seconds).
constexpr double kDuration = 120.0;
constexpr double kWithdrawStart = 40.0;
constexpr double kWithdrawEnd = 80.0;
constexpr double kConvergenceMs = 300.0;  // jittered +-25% by the injector
constexpr double kQueryIntervalS = 0.5;
constexpr double kRetryTimeoutS = 0.3;
constexpr int kMaxTries = 4;

struct Inventory {
  const char* name;
  std::vector<std::string> sites;
};

struct Percentiles {
  double p50 = 0.0;
  double p99 = 0.0;
};

Percentiles percentiles_of(const stats::Sample& s) {
  if (s.empty()) return {};
  return {s.quantile(0.5), s.quantile(0.99)};
}

/// p50/p99 of a snapshot histogram, each reported as its bin's upper edge.
Percentiles percentiles_of(const obs::MetricsSnapshot::HistogramValue& h) {
  Percentiles out;
  if (h.total == 0) return out;
  const double width = (h.hi - h.lo) / double(h.counts.size());
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    seen += h.counts[i];
    const double edge = h.lo + width * double(i + 1);
    if (out.p50 == 0.0 && double(seen) >= 0.50 * double(h.total)) {
      out.p50 = edge;
    }
    if (double(seen) >= 0.99 * double(h.total)) {
      out.p99 = edge;
      break;
    }
  }
  return out;
}

net::SimTime at_s(double s) {
  return net::SimTime::origin() + net::Duration::seconds(s);
}

/// One worldwide client: fires a query at each tick, retransmits on a
/// short timeout, and buckets the answer latency by the phase the query
/// STARTED in.
struct Client {
  net::NodeId node = net::kInvalidNode;
  net::Endpoint ep;
  struct Pending {
    net::SimTime first_sent;
    int tries = 0;
    bool steady = false;  // started outside the withdrawal window
  };
  std::map<std::uint16_t, Pending> pending;
  std::uint16_t next_id = 1;
};

struct InventoryResult {
  std::string name;
  std::size_t sites = 0;
  std::size_t clients = 0;
  std::string withdrawn_site;
  Percentiles steady;
  Percentiles failover;
  Percentiles unicast;
  Percentiles failover_hist;
  std::uint64_t failover_hist_total = 0;
  double gap_ms = 0.0;
  std::uint64_t shifts = 0;
  std::uint64_t lost_in_convergence = 0;
  std::uint64_t unanswered = 0;
};

/// Drives one service (anycast or the unicast control) with the shared
/// client population. Latencies land in `steady` / `failover` by phase.
struct Driver {
  net::Simulation& sim;
  net::Network& net;
  anycast::AnycastService& svc;
  std::vector<Client> clients;
  stats::Sample steady;
  stats::Sample failover;
  std::uint64_t unanswered = 0;

  Driver(net::Simulation& sim_, net::Network& net_,
         anycast::AnycastService& svc_,
         const std::vector<net::NodeId>& nodes, std::uint16_t base_port)
      : sim(sim_), net(net_), svc(svc_) {
    clients.resize(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      Client& c = clients[i];
      c.node = nodes[i];
      c.ep = net::Endpoint{net.allocate_address(), base_port};
      net.listen(c.node, c.ep, [this, &c](const net::Datagram& d,
                                          net::NodeId) {
        const auto msg = dns::decode_message(d.payload);
        const auto it = c.pending.find(msg.header.id);
        if (it == c.pending.end()) return;  // late duplicate
        const double ms = (sim.now() - it->second.first_sent).sec() * 1e3;
        (it->second.steady ? steady : failover).add(ms);
        c.pending.erase(it);
      });
    }
  }

  void send(Client& c, std::uint16_t id) {
    net.send(c.node, c.ep, net::Endpoint{svc.address(), net::kDnsPort},
             dns::encode_message(dns::Message::make_query(
                 id, dns::Name::parse("q" + std::to_string(id) + ".x.nl"),
                 dns::RRType::TXT)));
    Client* cp = &c;
    sim.at(sim.now() + net::Duration::seconds(kRetryTimeoutS),
           [this, cp, id] {
             const auto it = cp->pending.find(id);
             if (it == cp->pending.end()) return;  // answered
             if (++it->second.tries >= kMaxTries) {
               ++unanswered;
               cp->pending.erase(it);
               return;
             }
             send(*cp, id);
           });
  }

  void start_query(Client& c, bool steady_phase) {
    const std::uint16_t id = c.next_id++;
    c.pending[id] = Client::Pending{sim.now(), 1, steady_phase};
    send(c, id);
  }

  /// Schedules the full query train for every client up front.
  void schedule(stats::Rng& rng, bool fault_armed) {
    for (auto& c : clients) {
      const double offset = rng.uniform(0.0, kQueryIntervalS);
      for (double t = offset; t < kDuration; t += kQueryIntervalS) {
        const bool steady_phase =
            !fault_armed || t < kWithdrawStart || t >= kWithdrawEnd;
        Client* cp = &c;
        sim.at(at_s(t),
               [this, cp, steady_phase] { start_query(*cp, steady_phase); });
      }
    }
  }
};

InventoryResult run_inventory(const Inventory& inv, std::uint64_t seed) {
  net::Simulation sim{seed};
  net::LatencyParams params;
  params.loss_rate = 0.0;
  net::Network network{sim, params};

  auto zone = authns::Zone::from_text(dns::Name::parse("x.nl"), kZoneText);
  auto any = anycast::AnycastService::create(
      network, "bench-any", network.allocate_address(), inv.sites);
  any.add_zone(zone);
  any.start();
  // Unicast control: one site at the inventory's primary location.
  auto uni = anycast::AnycastService::create(
      network, "bench-uni", network.allocate_address(), {inv.sites.front()});
  uni.add_zone(zone);
  uni.start();

  // Clients: a few cities per continent, the same set for every inventory.
  std::vector<net::NodeId> nodes;
  for (const auto continent : net::all_continents()) {
    const auto cities = net::locations_on(continent);
    for (std::size_t i = 0; i < cities.size() && i < 8; ++i) {
      nodes.push_back(network.add_node(
          "vp-" + std::string(cities[i].code), cities[i].point));
    }
  }

  // Withdraw the site with the biggest catchment — the worst case the
  // inventory can absorb.
  std::map<std::string, int> catchment_sizes;
  for (const net::NodeId n : nodes) {
    if (const auto* site = any.catchment(n, net::SimTime::origin())) {
      ++catchment_sizes[site->code];
    }
  }
  std::string victim = inv.sites.front();
  int victim_size = -1;
  for (const auto& [code, count] : catchment_sizes) {
    if (count > victim_size) {
      victim = code;
      victim_size = count;
    }
  }

  fault::FaultSchedule schedule;
  schedule.add({fault::FaultKind::SiteWithdraw, at_s(kWithdrawStart),
                at_s(kWithdrawEnd), any.address().to_string(), victim,
                kConvergenceMs, -1.0});
  fault::FaultInjector injector{network, schedule};
  injector.bind_service(any);
  injector.arm();

  stats::Rng rng = sim.rng().fork("bench-anycast");
  Driver any_driver{sim, network, any, nodes, 40'000};
  Driver uni_driver{sim, network, uni, nodes, 41'000};
  any_driver.schedule(rng, /*fault_armed=*/true);
  uni_driver.schedule(rng, /*fault_armed=*/false);
  sim.run();

  const auto snap = sim.metrics().snapshot();
  InventoryResult r;
  r.name = inv.name;
  r.sites = inv.sites.size();
  r.clients = nodes.size();
  r.withdrawn_site = victim;
  r.steady = percentiles_of(any_driver.steady);
  r.failover = percentiles_of(any_driver.failover);
  r.unicast = percentiles_of(uni_driver.steady);
  r.gap_ms = r.unicast.p50 - r.steady.p50;
  r.shifts = snap.counter_value(obs::names::kAnycastCatchmentShift);
  r.lost_in_convergence =
      snap.counter_value(obs::names::kAnycastLostInConvergence);
  r.unanswered = any_driver.unanswered + uni_driver.unanswered;
  for (const auto& h : snap.histograms) {
    if (h.name == obs::names::kAnycastFailoverLatencyMs) {
      r.failover_hist = percentiles_of(h);
      r.failover_hist_total = h.total;
    }
  }
  return r;
}

void write_json(const std::string& path,
                const std::vector<InventoryResult>& results,
                std::uint64_t seed) {
  std::ofstream out{path};
  out << "{\n  \"schema\": \"bench_anycast.v1\",\n  \"seed\": " << seed
      << ",\n  \"inventories\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"sites\": " << r.sites
        << ", \"clients\": " << r.clients << ",\n"
        << "     \"withdrawn_site\": \"" << r.withdrawn_site << "\",\n"
        << "     \"steady_p50_ms\": " << r.steady.p50
        << ", \"steady_p99_ms\": " << r.steady.p99 << ",\n"
        << "     \"failover_p50_ms\": " << r.failover.p50
        << ", \"failover_p99_ms\": " << r.failover.p99 << ",\n"
        << "     \"unicast_p50_ms\": " << r.unicast.p50
        << ", \"unicast_p99_ms\": " << r.unicast.p99
        << ", \"anycast_unicast_gap_ms\": " << r.gap_ms << ",\n"
        << "     \"catchment_shifts\": " << r.shifts
        << ", \"lost_in_convergence\": " << r.lost_in_convergence
        << ", \"unanswered\": " << r.unanswered << ",\n"
        << "     \"failover_hist_p50_ms\": " << r.failover_hist.p50
        << ", \"failover_hist_p99_ms\": " << r.failover_hist.p99
        << ", \"failover_hist_total\": " << r.failover_hist_total << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("json -> %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const std::vector<Inventory> inventories = {
      {"root13",
       {"IAD", "LAX", "AMS", "FRA", "LHR", "NRT", "SYD", "GRU", "JNB",
        "BOM", "SIN", "ORD", "CDG"}},
      {"regional3", {"AMS", "IAD", "NRT"}},
  };

  std::vector<InventoryResult> results;
  for (const auto& inv : inventories) {
    results.push_back(run_inventory(inv, seed));
    const auto& r = results.back();
    std::printf(
        "%-10s %2zu sites, %zu clients, withdrew %s\n"
        "  steady   p50 %7.1f ms   p99 %7.1f ms\n"
        "  failover p50 %7.1f ms   p99 %7.1f ms   (%" PRIu64
        " shifts, %" PRIu64 " lost in convergence, %" PRIu64 " unanswered)\n"
        "  unicast  p50 %7.1f ms   p99 %7.1f ms   gap %+.1f ms\n"
        "  failover histogram p50 %.0f ms p99 %.0f ms over %" PRIu64
        " flows\n",
        r.name.c_str(), r.sites, r.clients, r.withdrawn_site.c_str(),
        r.steady.p50, r.steady.p99, r.failover.p50, r.failover.p99,
        r.shifts, r.lost_in_convergence, r.unanswered, r.unicast.p50,
        r.unicast.p99, r.gap_ms, r.failover_hist.p50, r.failover_hist.p99,
        r.failover_hist_total);
  }

  if (!json_path.empty()) write_json(json_path, results, seed);
  return 0;
}
