// Figure 7 (bottom): distribution of queries of busy recursives across 4
// of the 8 .nl authoritatives (ENTRADA-style hour).
//
// Paper shape: compared with the Root, a larger majority of recursives
// query ALL observed authoritatives, and fewer stick to a single one.
#include "bench_common.hpp"

#include "experiment/production.hpp"

using namespace recwild;
using namespace recwild::experiment;

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);

  TestbedConfig cfg;
  cfg.seed = opt.seed;
  cfg.build_population = false;
  Testbed tb{cfg};

  ProductionConfig pc;
  pc.target = ProductionTarget::Nl;
  pc.recursives = std::max<std::size_t>(opt.probes / 4, 100);

  const auto result = run_production(tb, pc);

  report::header("Figure 7 (bottom): .nl ccTLD, 4 of 8 authoritatives");
  std::printf("simulated recursives: %zu; with >=%zu queries/hour: %zu\n",
              result.sources_total, pc.min_queries,
              result.recursives.size());
  std::printf("observed services:");
  for (const auto& label : result.service_labels) {
    std::printf(" %s", label.c_str());
  }
  std::printf("\n\nmean share by rank:\n");
  for (std::size_t r = 0; r < result.mean_rank_share.size(); ++r) {
    std::printf("  rank %zu: %5.1f%%  %s\n", r + 1,
                result.mean_rank_share[r] * 100,
                report::bar(result.mean_rank_share[r], 50).c_str());
  }
  std::printf("\nnumber of services each busy recursive queries:\n");
  for (std::size_t n = 1; n <= result.fraction_querying.size(); ++n) {
    std::printf("  %zu services: %5.1f%%\n", n,
                result.fraction_querying[n - 1] * 100);
  }
  std::printf("\nquerying all 4: %s  (paper: the majority — more than at "
              "the Root)\nsingle-service: %s  (paper: fewer than at the "
              "Root)\n",
              report::pct(result.fraction_all()).c_str(),
              report::pct(result.fraction_single()).c_str());
  return 0;
}
