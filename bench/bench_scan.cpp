// Bulk-resolution scan throughput (the ZDNS-style engine).
//
// Three measurements over one shared immutable world:
//   1. serial baseline — per-VP window of 1, the chain-at-a-time issue
//      discipline every pre-scan engine used (measured on a proportional
//      subset; simulated-time throughput is what the speedup compares, and
//      it is independent of how many names the subset holds);
//   2. pipelined scan — the full name count with `--window` resolutions in
//      flight per vantage point and the resolvers' admission-bounded
//      pipelined front door, reporting host-wall queries/sec and the
//      sim-time speedup over the serial baseline;
//   3. byte-identity cross-check — a smaller scan with per-query JSONL
//      rows collected at shard counts 1, 2 and 4; all three serializations
//      must match to the byte.
//
//   ./build/bench/bench_scan --names 10000000 --window 32
//   ./build/bench/bench_scan --names 200000 --json BENCH_scan.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "experiment/scan.hpp"
#include "obs/process.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

double secs_between(std::chrono::steady_clock::time_point a,
                    std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

struct ScanRun {
  ScanResult result;
  ScanRunStats stats;
  double wall_s = 0.0;
};

ScanRun timed_scan(const std::shared_ptr<const WorldSnapshot>& world,
                   ScanConfig sc) {
  ScanRun run;
  sc.run_stats = &run.stats;
  Testbed tb{world};
  const auto t0 = std::chrono::steady_clock::now();
  run.result = run_scan(tb, sc);
  run.wall_s = secs_between(t0, std::chrono::steady_clock::now());
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);
  std::size_t names = 10'000'000;
  std::size_t window = 32;
  std::size_t shards = 0;  // one per hardware thread
  std::size_t identity_names = 50'000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--names") == 0 && i + 1 < argc) {
      names = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--identity-names") == 0 && i + 1 < argc) {
      identity_names = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }
  const unsigned cores = std::thread::hardware_concurrency();

  report::header("Bulk resolution scan (combination 2C)");
  std::printf("%zu names, %zu probes, window %zu, seed %llu, %u cores\n",
              names, opt.probes, window,
              static_cast<unsigned long long>(opt.seed), cores);

  // The pipelined resolver front door: bounded in-flight resolutions per
  // recursive, unbounded admission queue. The same world serves the serial
  // baseline — with a window of 1 each VP offers one chain at a time, so
  // the caps never bind there.
  TestbedConfig cfg = benchutil::make_config(opt, "2C");
  cfg.population.resolver_template.max_inflight_resolutions = 1024;
  cfg.population.resolver_template.max_queued_resolutions = 0;
  const auto tw0 = std::chrono::steady_clock::now();
  const auto world = WorldSnapshot::build(cfg);
  const double world_build_s =
      secs_between(tw0, std::chrono::steady_clock::now());
  std::printf("world built in %.2fs (%zu VP groups)\n\n", world_build_s,
              world->vp_groups.size());

  // 1. Serial baseline: chain-at-a-time, on a subset proportional to 1/50
  //    of the workload (>= 100k names). Sim throughput, not wall, is the
  //    speedup basis, so the subset size only bounds measurement noise.
  const std::size_t serial_names =
      std::max<std::size_t>(std::min<std::size_t>(100'000, names),
                            names / 50);
  ScanConfig serial_cfg;
  serial_cfg.names = serial_names;
  serial_cfg.per_vp_window = 1;
  serial_cfg.shards = shards;
  serial_cfg.collect_rows = false;
  const ScanRun serial = timed_scan(world, serial_cfg);
  std::printf(
      "serial baseline: %zu names in %.2fs wall (%.0f q/s wall), "
      "%.1fs sim (%.0f q/s sim)\n",
      serial_names, serial.wall_s, serial.result.queries_per_s,
      serial.result.sim_end_s, serial.result.sim_queries_per_s);

  // 2. Pipelined scan over the full name list.
  ScanConfig piped_cfg;
  piped_cfg.names = names;
  piped_cfg.per_vp_window = window;
  piped_cfg.shards = shards;
  piped_cfg.collect_rows = false;
  const ScanRun piped = timed_scan(world, piped_cfg);
  const double speedup_sim =
      serial.result.sim_queries_per_s > 0.0
          ? piped.result.sim_queries_per_s / serial.result.sim_queries_per_s
          : 0.0;
  std::printf(
      "pipelined scan:  %zu names in %.2fs wall (%.0f q/s wall), "
      "%.1fs sim (%.0f q/s sim)\n",
      names, piped.wall_s, piped.result.queries_per_s,
      piped.result.sim_end_s, piped.result.sim_queries_per_s);
  std::printf("sim-time speedup over serial chains: %.1fx\n\n", speedup_sim);

  // 3. Byte-identity: collected JSONL rows at shard counts 1, 2, 4.
  bool identical = true;
  std::string reference;
  for (const std::size_t s : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    ScanConfig id_cfg;
    id_cfg.names = identity_names;
    id_cfg.per_vp_window = window;
    id_cfg.shards = s;
    Testbed tb{world};
    const auto result = run_scan(tb, id_cfg);
    std::ostringstream out;
    obs::write_scan_rows(out, result.rows);
    if (reference.empty()) {
      reference = out.str();
    } else if (out.str() != reference) {
      identical = false;
      std::printf("JSONL MISMATCH at shards=%zu\n", s);
    }
  }
  std::printf("JSONL byte-identity across shards 1/2/4 (%zu names): %s\n",
              identity_names, identical ? "identical" : "MISMATCH");
  if (piped.result.completed != names) {
    std::printf("COMPLETION MISMATCH: %llu of %zu names completed\n",
                static_cast<unsigned long long>(piped.result.completed),
                names);
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(
        f,
        "{\n"
        "  \"bench\": \"scan\",\n"
        "  \"combination\": \"2C\",\n"
        "  \"names\": %zu,\n"
        "  \"probes\": %zu,\n"
        "  \"window\": %zu,\n"
        "  \"seed\": %llu,\n"
        "  \"cores\": %u,\n"
        "  \"world_build_s\": %.2f,\n"
        "  \"peak_rss_kb\": %zu,\n"
        "  \"serial\": {\"names\": %zu, \"wall_s\": %.2f, "
        "\"queries_per_s\": %.0f, \"sim_end_s\": %.1f, "
        "\"sim_queries_per_s\": %.0f},\n"
        "  \"pipelined\": {\"names\": %zu, \"completed\": %llu, "
        "\"wall_s\": %.2f, \"queries_per_s\": %.0f, \"sim_end_s\": %.1f, "
        "\"sim_queries_per_s\": %.0f, \"partition_s\": %.3f, "
        "\"merge_s\": %.3f},\n"
        "  \"speedup_sim\": %.2f,\n"
        "  \"byte_identity\": {\"names\": %zu, \"shards\": [1, 2, 4], "
        "\"identical\": %s}\n"
        "}\n",
        names, opt.probes, window,
        static_cast<unsigned long long>(opt.seed), cores, world_build_s,
        obs::peak_rss_kb(), serial_names, serial.wall_s,
        serial.result.queries_per_s, serial.result.sim_end_s,
        serial.result.sim_queries_per_s, names,
        static_cast<unsigned long long>(piped.result.completed),
        piped.wall_s, piped.result.queries_per_s, piped.result.sim_end_s,
        piped.result.sim_queries_per_s, piped.stats.partition_s,
        piped.stats.merge_s, speedup_sim, identity_names,
        identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return identical && piped.result.completed == names ? 0 : 1;
}
