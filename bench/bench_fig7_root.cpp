// Figure 7 (top): distribution of queries of busy recursives (>=250
// queries/hour) across 10 of the 13 Root letters — the DITL-2017 analysis.
//
// Paper shape: ~20% of busy recursives send to a single letter; ~60% query
// at least 6 letters; only ~2% query all 10 observed letters. The top
// (most-queried) letter takes the majority of each recursive's traffic.
#include "bench_common.hpp"

#include "experiment/production.hpp"

using namespace recwild;
using namespace recwild::experiment;

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);

  TestbedConfig cfg;
  cfg.seed = opt.seed;
  cfg.build_population = false;
  Testbed tb{cfg};

  ProductionConfig pc;
  pc.target = ProductionTarget::Root;
  pc.recursives = std::max<std::size_t>(opt.probes / 4, 100);

  const auto result = run_production(tb, pc);

  report::header("Figure 7 (top): Root DNS, 10 of 13 letters (DITL-style)");
  std::printf("simulated recursives: %zu; with >=%zu queries/hour: %zu\n",
              result.sources_total, pc.min_queries,
              result.recursives.size());

  std::printf("\nmean share of each recursive's queries by letter rank "
              "(the stacked bands of Fig 7):\n");
  for (std::size_t r = 0; r < result.mean_rank_share.size(); ++r) {
    std::printf("  rank %2zu: %5.1f%%  %s\n", r + 1,
                result.mean_rank_share[r] * 100,
                report::bar(result.mean_rank_share[r], 50).c_str());
  }

  std::printf("\nnumber of letters each busy recursive queries:\n");
  for (std::size_t n = 1; n <= result.fraction_querying.size(); ++n) {
    std::printf("  %2zu letters: %5.1f%%\n", n,
                result.fraction_querying[n - 1] * 100);
  }
  std::printf("\nsingle-letter recursives: %s  (paper: ~20%%)\n",
              report::pct(result.fraction_single()).c_str());
  std::printf("querying >=6 letters:      %s  (paper: ~60%%)\n",
              report::pct(result.fraction_at_least(6)).c_str());
  std::printf("querying all 10:           %s  (paper: ~2%%)\n",
              report::pct(result.fraction_all()).c_str());
  return 0;
}
