// Table 1: the seven authoritative combinations and the number of vantage
// points that see them. (Paper: 8,658-8,702 VPs per combination.)
#include "bench_common.hpp"

using namespace recwild;
using namespace recwild::experiment;

int main(int argc, char** argv) {
  const auto opt = benchutil::Options::parse(argc, argv);
  report::header("Table 1: authoritative combinations and VPs");
  std::printf("%-4s %-28s %8s %10s\n", "ID", "locations", "VPs",
              "answered");

  for (const auto& combo : table1_combinations()) {
    auto tb = benchutil::make_testbed(opt, combo.id);
    CampaignConfig cc;
    cc.queries_per_vp = 5;  // enough to count living VPs
    const auto result = run_campaign(tb, cc);
    std::size_t answered = 0;
    for (const auto& vp : result.vps) {
      for (const int s : vp.sequence) {
        if (s >= 0) {
          ++answered;
          break;
        }
      }
    }
    std::string locations;
    for (const auto& s : combo.sites) {
      if (!locations.empty()) locations += ", ";
      locations += s;
    }
    std::printf("%-4s %-28s %8zu %10zu\n", combo.id.c_str(),
                locations.c_str(), result.vps.size(), answered);
  }
  std::printf("\n(paper: 8,658-8,702 VPs per combination; scale with "
              "--probes)\n");
  return 0;
}
