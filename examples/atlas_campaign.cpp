// Atlas campaign: the paper's full measurement pipeline on one Table-1
// combination — deploy authoritatives, probe from an Atlas-like VP fleet
// every 2 minutes for an hour, then analyze coverage, shares, and
// per-recursive preference exactly as §4 does.
//
//   ./build/examples/atlas_campaign [combo] [probes] [shards]
//       [--obs metrics.json] [--trace decisions.tsv]
//       [--dump-auth-queries queries.txt]
//   e.g. ./build/examples/atlas_campaign 2C 3000 4 --obs run.json
//
// `--dump-auth-queries` writes every query the authoritative sites logged
// as "qname qtype" lines — the input format tools/loadgen replays against
// a live authnsd, so the real-socket bench serves the exact query mix a
// simulated campaign produced. Use shards=1 with it: sharded runs log
// queries in the replica worlds, not in this one.
//
// `shards` spreads the campaign over worker threads (0 = one per hardware
// thread); the result is byte-identical for every value. `--obs` exports
// the run's metric registry as merge-safe JSON, `--trace` enables decision
// tracing and writes the canonical tab-separated trace (see docs/METRICS.md);
// both files are byte-identical for every shard count too.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "experiment/analysis.hpp"
#include "experiment/campaign.hpp"
#include "experiment/report.hpp"
#include "experiment/testbed.hpp"
#include "obs/decision_trace.hpp"
#include "obs/metrics.hpp"

using namespace recwild;
using namespace recwild::experiment;

int main(int argc, char** argv) {
  const char* positional[3] = {nullptr, nullptr, nullptr};
  std::size_t n_positional = 0;
  std::string obs_path;
  std::string trace_path;
  std::string dump_queries_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--obs") == 0 && i + 1 < argc) {
      obs_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dump-auth-queries") == 0 &&
               i + 1 < argc) {
      dump_queries_path = argv[++i];
    } else if (n_positional < 3) {
      positional[n_positional++] = argv[i];
    }
  }
  const std::string combo_id = positional[0] != nullptr ? positional[0] : "2C";
  const std::size_t probes =
      positional[1] != nullptr ? std::strtoull(positional[1], nullptr, 10)
                               : 1'000;
  const std::size_t shards =
      positional[2] != nullptr ? std::strtoull(positional[2], nullptr, 10)
                               : 1;

  TestbedConfig cfg;
  cfg.seed = 1;
  cfg.population.probes = probes;
  cfg.test_sites = combination(combo_id).sites;
  cfg.trace_decisions = !trace_path.empty();
  Testbed testbed{cfg};

  std::printf("combination %s:", combo_id.c_str());
  for (const auto& svc : testbed.test_services()) {
    std::printf(" %s", svc.name().c_str());
  }
  std::printf(" | %zu probes, %zu recursives, %zu shard(s)\n", probes,
              testbed.population().recursives().size(), shards);

  CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 31;
  cc.shards = shards;
  const auto result = run_campaign(testbed, cc);

  const auto cov = analyze_coverage(result);
  report::header("Coverage (paper §4.1)");
  std::printf("VPs answering: %zu; probed all authoritatives: %s\n",
              cov.vps_considered, report::pct(cov.covering_fraction).c_str());
  if (cov.queries_to_cover) {
    std::printf("queries after the first to see all: %s\n",
                report::box(*cov.queries_to_cover, 0).c_str());
  }

  const auto shares = analyze_shares(result);
  report::header("Aggregate shares (paper §4.2)");
  for (std::size_t s = 0; s < shares.codes.size(); ++s) {
    std::printf("%-4s %6.1f%%  median RTT %7.1f ms  %s\n",
                shares.codes[s].c_str(), shares.query_share[s] * 100,
                shares.median_rtt_ms[s],
                report::bar(shares.query_share[s], 40).c_str());
  }

  const auto prefs = analyze_preferences(result);
  report::header("Per-recursive preference (paper §4.3)");
  std::printf("weak (>=60%%): %s   strong (>=90%%): %s\n",
              report::pct(prefs.weak_fraction).c_str(),
              report::pct(prefs.strong_fraction).c_str());
  std::printf("RTT-following among VPs with a >=50 ms gap: %s (n=%zu)\n",
              report::pct(prefs.rtt_following_fraction).c_str(),
              prefs.rtt_eligible_vps);
  std::printf("\n%-4s %6s  shares per authoritative\n", "cont", "VPs");
  for (const auto& cp : prefs.continents) {
    if (cp.vp_count == 0) continue;
    std::printf("%-4s %6zu ",
                std::string{net::continent_code(cp.continent)}.c_str(),
                cp.vp_count);
    for (std::size_t s = 0; s < result.service_codes.size(); ++s) {
      std::printf(" %s=%4.0f%%(%3.0fms)", result.service_codes[s].c_str(),
                  cp.query_share[s] * 100, cp.median_rtt_ms[s]);
    }
    std::printf("\n");
  }

  if (!obs_path.empty()) {
    std::ofstream out{obs_path};
    result.metrics.write_json(out, obs::SnapshotStyle::MergeSafe);
    out << "\n";
    std::printf("\nmetrics -> %s\n", obs_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream out{trace_path};
    obs::write_trace(out, testbed.trace().canonical());
    std::printf("decision trace (%zu events) -> %s\n",
                testbed.trace().size(), trace_path.c_str());
  }
  if (!dump_queries_path.empty()) {
    std::ofstream out{dump_queries_path};
    std::size_t dumped = 0;
    for (const auto& svc : testbed.test_services()) {
      for (const auto& site : svc.sites()) {
        for (const auto& e : site.server->log().entries()) {
          out << e.qname.to_string() << ' ' << dns::to_string(e.qtype)
              << '\n';
          ++dumped;
        }
      }
    }
    std::printf("auth query log (%zu queries) -> %s\n", dumped,
                dump_queries_path.c_str());
    if (dumped == 0) {
      std::printf("  (empty: sharded runs log in replica worlds; "
                  "rerun with shards=1)\n");
    }
  }
  return 0;
}
