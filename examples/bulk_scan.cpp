// Bulk scan CLI: stream a name list through the simulated vantage-point
// population at a target per-VP concurrency and write one JSONL row per
// query — the ZDNS-style measurement front-end over the testbed.
//
//   ./build/examples/bulk_scan [--names N | --name-file FILE]
//       [--probes P] [--seed S] [--concurrency W] [--shards K]
//       [--qtype TYPE] [--out rows.jsonl] [--obs metrics.json]
//
// Generated mode scans s0..s<N-1> under the testbed's wildcard test
// domain (cache-busting unique labels); `--name-file` reads one
// presentation-form name per line instead. `--shards` spreads the scan
// over worker threads (0 = one per hardware thread) — the JSONL output is
// byte-identical for every value. Rows go to stdout unless `--out` is
// given; a summary (names, wall seconds, queries/sec) goes to stderr.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "experiment/scan.hpp"
#include "obs/metrics.hpp"

using namespace recwild;
using namespace recwild::experiment;

int main(int argc, char** argv) {
  std::size_t names = 10'000;
  std::size_t probes = 2'000;
  std::uint64_t seed = 42;
  std::size_t concurrency = 32;
  std::size_t shards = 1;
  std::string qtype = "TXT";
  std::string name_file;
  std::string out_path;
  std::string obs_path;
  for (int i = 1; i < argc; ++i) {
    auto arg = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
        return argv[++i];
      }
      return nullptr;
    };
    if (const char* v = arg("--names")) {
      names = std::strtoull(v, nullptr, 10);
    } else if (const char* v2 = arg("--name-file")) {
      name_file = v2;
    } else if (const char* v3 = arg("--probes")) {
      probes = std::strtoull(v3, nullptr, 10);
    } else if (const char* v4 = arg("--seed")) {
      seed = std::strtoull(v4, nullptr, 10);
    } else if (const char* v5 = arg("--concurrency")) {
      concurrency = std::strtoull(v5, nullptr, 10);
    } else if (const char* v6 = arg("--shards")) {
      shards = std::strtoull(v6, nullptr, 10);
    } else if (const char* v7 = arg("--qtype")) {
      qtype = v7;
    } else if (const char* v8 = arg("--out")) {
      out_path = v8;
    } else if (const char* v9 = arg("--obs")) {
      obs_path = v9;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  ScanConfig sc;
  sc.names = names;
  sc.per_vp_window = concurrency;
  sc.shards = shards;
  if (!name_file.empty()) {
    std::ifstream in{name_file};
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", name_file.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) sc.name_list.push_back(line);
    }
    if (sc.name_list.empty()) {
      std::fprintf(stderr, "%s holds no names\n", name_file.c_str());
      return 1;
    }
  }
  if (const auto t = dns::rrtype_from_string(qtype)) {
    sc.qtype = *t;
  } else {
    std::fprintf(stderr, "unknown --qtype %s\n", qtype.c_str());
    return 2;
  }

  TestbedConfig cfg;
  cfg.seed = seed;
  cfg.population.probes = probes;
  cfg.test_sites = {"DUB", "FRA", "GRU"};
  cfg.population.resolver_template.max_inflight_resolutions = 1024;
  Testbed tb{cfg};
  const auto result = run_scan(tb, sc);

  if (out_path.empty()) {
    obs::write_scan_rows(std::cout, result.rows);
  } else {
    std::ofstream out{out_path, std::ios::binary};
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    obs::write_scan_rows(out, result.rows);
  }
  if (!obs_path.empty()) {
    std::ofstream out{obs_path, std::ios::binary};
    result.metrics.write_json(out, obs::SnapshotStyle::MergeSafe);
  }
  std::fprintf(stderr,
               "%llu names issued, %llu completed, %.2fs wall, %.0f q/s "
               "(sim: %.1fs, %.0f q/s)\n",
               static_cast<unsigned long long>(result.issued),
               static_cast<unsigned long long>(result.completed),
               result.wall_s, result.queries_per_s, result.sim_end_s,
               result.sim_queries_per_s);
  return result.completed == result.issued ? 0 : 1;
}
