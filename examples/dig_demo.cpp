// dig_demo: a dig-like command line against the simulated Internet.
//
// Builds the full world (root letters, .nl, a 2-authoritative test domain)
// and resolves the names given on the command line through a recursive
// resolver in Amsterdam, printing dig-style responses and the resolution
// trace (which servers were consulted, at what RTT).
//
//   ./build/examples/dig_demo q1.ourtestdomain.nl TXT nl NS missing.nl A
#include <cstdio>
#include <string>
#include <vector>

#include "experiment/testbed.hpp"

using namespace recwild;

int main(int argc, char** argv) {
  // Parse "name [type]" pairs from the command line.
  std::vector<std::pair<std::string, dns::RRType>> queries;
  for (int i = 1; i < argc; ++i) {
    std::string name = argv[i];
    dns::RRType type = dns::RRType::A;
    if (i + 1 < argc) {
      if (const auto t = dns::rrtype_from_string(argv[i + 1])) {
        type = *t;
        ++i;
      }
    }
    queries.emplace_back(std::move(name), type);
  }
  if (queries.empty()) {
    queries = {{"hello.ourtestdomain.nl", dns::RRType::TXT},
               {"nl", dns::RRType::NS},
               {"doesnotexist.nl", dns::RRType::A}};
  }

  experiment::TestbedConfig cfg;
  cfg.seed = 20170412;
  cfg.build_population = false;
  cfg.test_sites = {"DUB", "FRA"};
  experiment::Testbed tb{cfg};

  resolver::ResolverConfig rc;
  rc.name = "dig-demo-resolver";
  resolver::RecursiveResolver res{
      tb.network(),
      tb.network().add_node("dig-resolver",
                            net::find_location("AMS")->point),
      tb.network().allocate_address(), rc, tb.hints(), stats::Rng{1}};
  res.start();

  for (const auto& [name, type] : queries) {
    std::printf("; <<>> recwild dig <<>> %s %s\n", name.c_str(),
                std::string{dns::to_string(type)}.c_str());
    const std::uint64_t upstream_before = res.upstream_sent();
    res.resolve(
        dns::Question{dns::Name::parse(name), type, dns::RRClass::IN},
        [&, qname = name](const resolver::ResolveOutcome& out) {
          dns::Message m;
          m.header.qr = true;
          m.header.ra = true;
          m.header.rcode = out.rcode;
          m.questions.push_back(dns::Question{dns::Name::parse(qname), type,
                                              dns::RRClass::IN});
          m.answers = out.answers;
          std::printf("%s", m.to_string().c_str());
          std::printf(";; Query time: %.1f ms, upstream queries: %d\n\n",
                      out.elapsed.ms(), out.upstream_queries);
        });
    tb.sim().run();
    (void)upstream_before;
  }

  // Show what the resolver has learned about the world.
  std::printf(";; infrastructure cache (learned server RTTs):\n");
  const auto now = tb.sim().now();
  auto show = [&](const anycast::AnycastService& svc) {
    if (const auto* st = res.infra().get(svc.address(), now)) {
      std::printf(";;   %-16s %-16s srtt %7.1f ms\n", svc.name().c_str(),
                  svc.address().to_string().c_str(), st->srtt_ms);
    }
  };
  for (const auto& svc : tb.roots()) show(svc);
  for (const auto& svc : tb.nl_services()) show(svc);
  for (const auto& svc : tb.test_services()) show(svc);
  return 0;
}
