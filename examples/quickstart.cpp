// Quickstart: build the paper's world in a few lines — root letters, the
// .nl TLD, a two-authoritative test domain (combination 2B: Dublin +
// Frankfurt) and a small Atlas-like vantage point population — then resolve
// a name end-to-end and show which authoritative answered.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "experiment/campaign.hpp"
#include "experiment/analysis.hpp"
#include "experiment/testbed.hpp"

using namespace recwild;

int main() {
  experiment::TestbedConfig cfg;
  cfg.seed = 7;
  cfg.population.probes = 200;          // scaled-down Atlas
  cfg.test_sites = {"DUB", "FRA"};      // Table 1, combination 2B

  experiment::Testbed testbed{cfg};
  std::printf("testbed: %zu root letters, %zu .nl services, %zu test "
              "authoritatives, %zu probes, %zu recursives\n",
              testbed.roots().size(), testbed.nl_services().size(),
              testbed.test_services().size(),
              testbed.population().vps().size(),
              testbed.population().recursives().size());

  // 1. A single end-to-end resolution through one probe's stub.
  auto& vp = testbed.population().vps().front();
  vp.stub->query(
      dns::Name::parse("hello.ourtestdomain.nl"), dns::RRType::TXT,
      [](const client::StubResult& r) {
        std::printf("probe 0 resolved %s -> rcode %s, answered by \"%s\" "
                    "in %.1f ms\n",
                    r.question.qname.to_string().c_str(),
                    std::string{dns::to_string(r.rcode)}.c_str(),
                    r.txt.empty() ? "?" : r.txt.front().c_str(),
                    r.elapsed.ms());
      });
  testbed.sim().run();

  // 2. A miniature measurement campaign (every probe, 10 rounds).
  experiment::CampaignConfig campaign;
  campaign.queries_per_vp = 10;
  const auto result = experiment::run_campaign(testbed, campaign);

  const auto coverage = experiment::analyze_coverage(result);
  std::printf("\ncampaign: %zu VPs answered; %.1f%% probed both "
              "authoritatives\n",
              coverage.vps_considered, coverage.covering_fraction * 100);

  const auto shares = experiment::analyze_shares(result);
  for (std::size_t s = 0; s < shares.codes.size(); ++s) {
    std::printf("  %s: %5.1f%% of queries, median RTT %6.1f ms\n",
                shares.codes[s].c_str(), shares.query_share[s] * 100,
                shares.median_rtt_ms[s]);
  }
  return 0;
}
