// Resolver policies: watch the six server-selection algorithms (Yu et
// al.'s catalogue, paper §2/§6) choose between a near and a far
// authoritative in a live resolver, side by side.
//
//   ./build/examples/resolver_policies
#include <cstdio>
#include <map>

#include "authns/server.hpp"
#include "experiment/report.hpp"
#include "resolver/resolver.hpp"

using namespace recwild;

namespace {

/// Builds a 2-authoritative world for one policy and counts which
/// authoritative receives each of `n` cache-defeating queries.
std::map<std::string, int> run_policy(resolver::PolicyKind kind, int n) {
  net::Simulation sim{321};
  net::LatencyParams params;
  params.loss_rate = 0.0;
  net::Network network{sim, params};
  const auto loc = [](const char* c) { return net::find_location(c)->point; };

  const net::IpAddress near_addr = network.allocate_address();
  const net::IpAddress far_addr = network.allocate_address();

  auto zone_for = [&](const char* payload) {
    authns::Zone z{dns::Name::parse("test.nl")};
    dns::SoaRdata soa;
    soa.minimum = 30;
    z.add({z.origin(), dns::RRClass::IN, 86400, soa});
    for (const char* ns : {"ns1.test.nl", "ns2.test.nl"}) {
      z.add({z.origin(), dns::RRClass::IN, 86400,
             dns::NsRdata{dns::Name::parse(ns)}});
    }
    z.add({dns::Name::parse("ns1.test.nl"), dns::RRClass::IN, 86400,
           dns::ARdata{near_addr}});
    z.add({dns::Name::parse("ns2.test.nl"), dns::RRClass::IN, 86400,
           dns::ARdata{far_addr}});
    z.add({dns::Name::parse("*.test.nl"), dns::RRClass::IN, 1,
           dns::TxtRdata{{payload}}});
    return z;
  };

  authns::AuthServerConfig near_cfg;
  near_cfg.identity = "near";
  authns::AuthServer near_server{network, network.add_node("near", loc("FRA")),
                                 net::Endpoint{near_addr, net::kDnsPort},
                                 near_cfg};
  near_server.add_zone(zone_for("NEAR-FRA"));
  near_server.start();

  authns::AuthServerConfig far_cfg;
  far_cfg.identity = "far";
  authns::AuthServer far_server{network, network.add_node("far", loc("SYD")),
                                net::Endpoint{far_addr, net::kDnsPort},
                                far_cfg};
  far_server.add_zone(zone_for("FAR-SYD"));
  far_server.start();

  resolver::ResolverConfig rcfg;
  rcfg.name = "demo";
  rcfg.policy = kind;
  // Hints point directly at the test zone's servers: this resolver only
  // ever talks to the two authoritatives.
  resolver::RecursiveResolver res{
      network, network.add_node("resolver", loc("AMS")),
      network.allocate_address(), rcfg,
      {{dns::Name::parse("ns1.test.nl"), near_addr},
       {dns::Name::parse("ns2.test.nl"), far_addr}},
      stats::Rng{kind == resolver::PolicyKind::StickyFirst ? 11u : 7u}};
  res.start();

  std::map<std::string, int> counts;
  for (int i = 0; i < n; ++i) {
    res.resolve(dns::Question{dns::Name::parse("q" + std::to_string(i) +
                                               ".test.nl"),
                              dns::RRType::TXT, dns::RRClass::IN},
                [&counts](const resolver::ResolveOutcome& out) {
                  for (const auto& rr : out.answers) {
                    if (rr.type() == dns::RRType::TXT) {
                      counts[std::get<dns::TxtRdata>(rr.rdata)
                                 .strings.at(0)]++;
                    }
                  }
                });
    sim.run();  // finish this query before the next (steady probing)
  }
  return counts;
}

}  // namespace

int main() {
  experiment::report::header(
      "Server selection policies: FRA (near) vs SYD (far), seen from AMS");
  std::printf("%-16s %10s %10s   share to the nearer authoritative\n",
              "policy", "near", "far");
  const int n = 200;
  for (const auto kind :
       {resolver::PolicyKind::BindSrtt, resolver::PolicyKind::UnboundBand,
        resolver::PolicyKind::PowerDnsFactor,
        resolver::PolicyKind::UniformRandom, resolver::PolicyKind::RoundRobin,
        resolver::PolicyKind::StickyFirst}) {
    auto counts = run_policy(kind, n);
    const int near = counts["NEAR-FRA"];
    const int far = counts["FAR-SYD"];
    const double share = near + far > 0
                             ? double(near) / double(near + far)
                             : 0.0;
    std::printf("%-16s %10d %10d   %s %s\n",
                std::string{to_string(kind)}.c_str(), near, far,
                experiment::report::pct(share).c_str(),
                experiment::report::bar(share, 30).c_str());
  }
  std::printf("\nYu et al. [33] found half the implementations are "
              "latency-driven; the paper measures how this mixture plays "
              "out in the wild.\n");
  return 0;
}
