// Chaos campaign: a measurement campaign under a deterministic fault
// schedule (src/fault). Generates a seeded random schedule over the
// deployed world — or loads one from disk — arms it on the testbed, runs
// the campaign for shard counts 1, 2 and 4, and verifies the merged
// metrics and decision trace are byte-identical across all three: the
// chaos harness's determinism check, runnable by hand.
//
//   ./build/examples/chaos_campaign [seed] [probes]
//       [--schedule faults.tsv]        load instead of generating
//       [--emit-schedule faults.tsv]   write the schedule used and exit
//       [--obs metrics.json] [--trace decisions.tsv]
//       [--attack nxns|water_torture]  arm an adversarial workload too
//       [--assert-defense]             with --attack: run undefended vs
//                                      defended (RRL + fanout cap + fetch
//                                      limits) and fail unless the defended
//                                      victim load drops (the CI smoke)
//       [--flap]                       use a deterministic BGP flap +
//                                      site-withdrawal schedule instead of
//                                      the seeded random one
//       [--assert-failover]            with --flap: run serially and fail
//                                      unless every VP query completed and
//                                      the failover latency histogram
//                                      recorded catchment shifts (the CI
//                                      failover smoke)
//   e.g. ./build/examples/chaos_campaign 1009 300
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "attack/generator.hpp"
#include "attack/schedule.hpp"
#include "experiment/campaign.hpp"
#include "experiment/testbed.hpp"
#include "fault/chaos.hpp"
#include "obs/decision_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

TestbedConfig base_config(std::size_t probes, bool anycast_test = false) {
  TestbedConfig cfg;
  cfg.seed = 77;
  cfg.population.probes = probes;
  cfg.test_sites = {"DUB", "FRA", "GRU"};
  cfg.anycast_test = anycast_test;
  cfg.trace_decisions = true;
  return cfg;
}

struct AttackOptions {
  bool enabled = false;
  attack::AttackKind kind = attack::AttackKind::Nxns;
  bool defended = false;
};

/// Arms an attack wave over minutes 2..12 of the campaign and, when
/// `defended`, the full layered defense stack (docs/ATTACKS.md): RRL with
/// TC-slip on the defender authoritatives, the engine-wide referral-fanout
/// cap, and resolver-side fetch limits at every recursive.
void apply_attack(TestbedConfig& cfg, const AttackOptions& atk) {
  if (!atk.enabled) return;
  attack::AttackSchedule sched;
  sched.zone().chains = 8;
  sched.zone().fanout = 16;
  attack::AttackEvent ev;
  ev.kind = atk.kind;
  ev.start = net::SimTime::origin() + net::Duration::minutes(2);
  ev.end = net::SimTime::origin() + net::Duration::minutes(12);
  ev.interval = net::Duration::seconds(5);
  ev.bots = 12;
  sched.add(ev);
  cfg.attack = sched;
  if (atk.defended) {
    cfg.rrl.rate = 10;
    cfg.rrl.slip = 2;
    cfg.referral_fanout_cap = 2;
    cfg.population.resolver_template.max_fetches_per_resolution = 2;
    cfg.population.resolver_template.fetches_per_zone = 4;
  }
}

/// Harvests fault targets (server identities, node names, service
/// addresses) from a throwaway build of the world.
fault::ChaosSpace world_space(std::size_t probes) {
  Testbed scout{base_config(probes)};
  fault::ChaosSpace space;
  space.horizon = net::Duration::minutes(20);
  space.events = 6;
  for (auto& svc : scout.test_services()) {
    for (auto& site : svc.sites()) {
      space.server_targets.push_back(site.server->identity());
      space.node_targets.push_back(scout.network().node(site.node).name);
    }
    space.address_targets.push_back(svc.address().to_string());
  }
  return space;
}

/// A deterministic dynamic-catchment schedule over the anycast test
/// service (base_config with anycast_test): its first site flaps (60 s
/// withdraw/announce cycles, 800 ms convergence) for most of the campaign,
/// and its last site withdraws outright mid-campaign. Exercises the
/// route-hook path end to end — targeting by shared address AND by service
/// label — without depending on what random_schedule draws.
fault::FaultSchedule flap_schedule(std::size_t probes) {
  Testbed scout{base_config(probes, /*anycast_test=*/true)};
  auto& svc = scout.test_services().front();
  fault::FaultSchedule schedule;
  schedule.add({fault::FaultKind::SiteFlap,
                net::SimTime::origin() + net::Duration::minutes(2),
                net::SimTime::origin() + net::Duration::minutes(14),
                svc.address().to_string(), svc.sites().front().code, 800.0,
                -1.0, 60'000.0});
  schedule.add({fault::FaultKind::SiteWithdraw,
                net::SimTime::origin() + net::Duration::minutes(4),
                net::SimTime::origin() + net::Duration::minutes(12),
                svc.name(), svc.sites().back().code, 1500.0, -1.0});
  schedule.validate();
  return schedule;
}

/// The CI failover smoke behind --flap --assert-failover: arm the
/// deterministic flap schedule, run the campaign serially, and fail unless
/// every VP query completed with an outcome AND the failover machinery
/// measurably engaged: catchment shifts counted and failover latencies
/// recorded in the histogram.
int assert_failover(std::size_t probes) {
  auto cfg = base_config(probes, /*anycast_test=*/true);
  cfg.faults = flap_schedule(probes);
  Testbed testbed{cfg};
  CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 8;
  const auto result = run_campaign(testbed, cc);

  bool complete = true;
  for (const auto& vp : result.vps) {
    if (vp.sequence.size() != cc.queries_per_vp) complete = false;
  }
  const auto& m = result.metrics;
  const auto sent = m.counter_value(obs::names::kCampaignQueriesSent);
  const auto answered =
      m.counter_value(obs::names::kCampaignQueriesAnswered);
  const auto unanswered =
      m.counter_value(obs::names::kCampaignQueriesUnanswered);
  const auto shifts =
      m.counter_value(obs::names::kAnycastCatchmentShift);
  const auto lost =
      m.counter_value(obs::names::kAnycastLostInConvergence);
  std::uint64_t hist_total = 0;
  for (const auto& h : m.histograms) {
    if (h.name == obs::names::kAnycastFailoverLatencyMs) {
      hist_total = h.total;
    }
  }
  std::printf(
      "\nflap failover check: %llu sent = %llu answered + %llu unanswered; "
      "%llu catchment shift(s), %llu lost in convergence, failover "
      "histogram %llu sample(s)\n",
      static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(answered),
      static_cast<unsigned long long>(unanswered),
      static_cast<unsigned long long>(shifts),
      static_cast<unsigned long long>(lost),
      static_cast<unsigned long long>(hist_total));
  const bool ok = complete && sent == answered + unanswered &&
                  shifts > 0 && hist_total > 0;
  std::printf("all VP queries complete and failover measured: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

struct RunOutput {
  std::string metrics_json;
  std::string trace_tsv;
};

RunOutput run_once(const fault::FaultSchedule& schedule, std::size_t probes,
                   std::size_t shards, const AttackOptions& atk,
                   bool anycast_test) {
  auto cfg = base_config(probes, anycast_test);
  cfg.faults = schedule;
  apply_attack(cfg, atk);
  Testbed testbed{cfg};
  CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 8;
  cc.shards = shards;
  const auto result = run_campaign(testbed, cc);

  RunOutput out;
  out.metrics_json = result.metrics.to_json(obs::SnapshotStyle::MergeSafe);
  std::ostringstream trace_out;
  obs::write_trace(trace_out, testbed.trace().canonical());
  out.trace_tsv = trace_out.str();

  const auto snap = result.metrics;
  std::printf(
      "  shards=%zu: %llu sent, %llu answered, %llu unanswered; "
      "%llu pkts dropped, %llu delayed by faults\n",
      shards,
      static_cast<unsigned long long>(
          snap.counter_value(obs::names::kCampaignQueriesSent)),
      static_cast<unsigned long long>(
          snap.counter_value(obs::names::kCampaignQueriesAnswered)),
      static_cast<unsigned long long>(
          snap.counter_value(obs::names::kCampaignQueriesUnanswered)),
      static_cast<unsigned long long>(
          snap.counter_value(obs::names::kFaultPacketsDropped)),
      static_cast<unsigned long long>(
          snap.counter_value(obs::names::kFaultPacketsDelayed)));
  if (atk.enabled) {
    std::printf(
        "             attack: %llu injected, %llu victim-side queries\n",
        static_cast<unsigned long long>(
            snap.counter_value(obs::names::kAttackQueriesInjected)),
        static_cast<unsigned long long>(
            snap.counter_value(obs::names::kAttackVictimQueries)));
  }
  return out;
}

/// The CI smoke behind --assert-defense: the same attacked world run
/// serially twice — defenses off, then the full stack — comparing the
/// victim-side queries attributable to the attack (counted from the victim
/// authoritatives' query logs, the amplification numerator). Returns the
/// process exit code.
int assert_defense(std::size_t probes, attack::AttackKind kind) {
  std::uint64_t victim_attack[2] = {0, 0};
  std::uint64_t injected[2] = {0, 0};
  for (int defended = 0; defended < 2; ++defended) {
    auto cfg = base_config(probes);
    apply_attack(cfg, AttackOptions{true, kind, defended == 1});
    Testbed testbed{cfg};
    CampaignConfig cc;
    cc.interval = net::Duration::minutes(2);
    cc.queries_per_vp = 8;
    const auto result = run_campaign(testbed, cc);
    injected[defended] =
        result.metrics.counter_value(obs::names::kAttackQueriesInjected);
    for (auto& svc : testbed.test_services()) {
      for (auto& site : svc.sites()) {
        for (const auto& entry : site.server->log().entries()) {
          if (attack::is_attack_query_name(entry.qname)) {
            ++victim_attack[defended];
          }
        }
      }
    }
  }
  const double amp_off =
      injected[0] > 0 ? static_cast<double>(victim_attack[0]) /
                            static_cast<double>(injected[0])
                      : 0.0;
  const double amp_def =
      injected[1] > 0 ? static_cast<double>(victim_attack[1]) /
                            static_cast<double>(injected[1])
                      : 0.0;
  std::printf(
      "\n%s defense check: undefended %llu victim queries (amp %.2fx), "
      "defended %llu (amp %.2fx)\n",
      std::string{attack::to_string(kind)}.c_str(),
      static_cast<unsigned long long>(victim_attack[0]), amp_off,
      static_cast<unsigned long long>(victim_attack[1]), amp_def);
  const bool ok = injected[0] > 0 && victim_attack[1] < victim_attack[0];
  std::printf("defended victim load drops: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const char* positional[2] = {nullptr, nullptr};
  std::size_t n_positional = 0;
  std::string schedule_path;
  std::string emit_path;
  std::string obs_path;
  std::string trace_path;
  AttackOptions atk;
  bool check_defense = false;
  bool flap = false;
  bool check_failover = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schedule") == 0 && i + 1 < argc) {
      schedule_path = argv[++i];
    } else if (std::strcmp(argv[i], "--emit-schedule") == 0 && i + 1 < argc) {
      emit_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0 && i + 1 < argc) {
      obs_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--attack") == 0 && i + 1 < argc) {
      atk.enabled = true;
      try {
        atk.kind = attack::attack_kind_from_string(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--assert-defense") == 0) {
      check_defense = true;
    } else if (std::strcmp(argv[i], "--flap") == 0) {
      flap = true;
    } else if (std::strcmp(argv[i], "--assert-failover") == 0) {
      check_failover = true;
    } else if (n_positional < 2) {
      positional[n_positional++] = argv[i];
    }
  }
  const std::uint64_t seed =
      positional[0] != nullptr ? std::strtoull(positional[0], nullptr, 10)
                               : 1009;
  const std::size_t probes =
      positional[1] != nullptr ? std::strtoull(positional[1], nullptr, 10)
                               : 120;

  if (check_defense) {
    if (!atk.enabled) {
      std::fprintf(stderr, "--assert-defense requires --attack\n");
      return 2;
    }
    return assert_defense(probes, atk.kind);
  }
  if (check_failover) {
    if (!flap) {
      std::fprintf(stderr, "--assert-failover requires --flap\n");
      return 2;
    }
    return assert_failover(probes);
  }

  fault::FaultSchedule schedule;
  if (flap) {
    schedule = flap_schedule(probes);
    std::printf("deterministic flap schedule -> %zu fault events\n",
                schedule.size());
  } else if (!schedule_path.empty()) {
    std::ifstream in{schedule_path};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", schedule_path.c_str());
      return 1;
    }
    schedule = fault::read_schedule(in);
    std::printf("loaded %zu fault events from %s\n", schedule.size(),
                schedule_path.c_str());
  } else {
    schedule = fault::random_schedule(world_space(probes), stats::Rng{seed});
    std::printf("seed %llu -> %zu fault events\n",
                static_cast<unsigned long long>(seed), schedule.size());
  }
  for (const auto& e : schedule.events()) {
    std::printf("  %-13s %6.1f..%6.1f min  %s%s%s  magnitude %.3g%s\n",
                std::string{to_string(e.kind)}.c_str(), e.start.minutes(),
                e.end.minutes(), e.target_a.c_str(),
                e.target_b.empty() ? "" : " <-> ", e.target_b.c_str(),
                e.magnitude,
                e.magnitude_end < 0 ? "" : " (ramped)");
  }
  if (!emit_path.empty()) {
    std::ofstream out{emit_path};
    fault::write_schedule(out, schedule);
    std::printf("schedule -> %s\n", emit_path.c_str());
    return 0;
  }

  std::printf("\ncampaign under faults (%zu probes%s):\n", probes,
              atk.enabled ? ", attack armed" : "");
  const RunOutput serial = run_once(schedule, probes, 1, atk, flap);
  const RunOutput two = run_once(schedule, probes, 2, atk, flap);
  const RunOutput four = run_once(schedule, probes, 4, atk, flap);

  const bool metrics_ok = serial.metrics_json == two.metrics_json &&
                          serial.metrics_json == four.metrics_json;
  const bool trace_ok = serial.trace_tsv == two.trace_tsv &&
                        serial.trace_tsv == four.trace_tsv;
  std::printf("\nmetrics byte-identical across shards 1/2/4: %s\n",
              metrics_ok ? "yes" : "NO");
  std::printf("trace   byte-identical across shards 1/2/4: %s\n",
              trace_ok ? "yes" : "NO");

  if (!obs_path.empty()) {
    std::ofstream out{obs_path};
    out << serial.metrics_json << "\n";
    std::printf("metrics -> %s\n", obs_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream out{trace_path};
    out << serial.trace_tsv;
    std::printf("trace -> %s\n", trace_path.c_str());
  }
  return metrics_ok && trace_ok ? 0 : 1;
}
