// Chaos campaign: a measurement campaign under a deterministic fault
// schedule (src/fault). Generates a seeded random schedule over the
// deployed world — or loads one from disk — arms it on the testbed, runs
// the campaign for shard counts 1, 2 and 4, and verifies the merged
// metrics and decision trace are byte-identical across all three: the
// chaos harness's determinism check, runnable by hand.
//
//   ./build/examples/chaos_campaign [seed] [probes]
//       [--schedule faults.tsv]        load instead of generating
//       [--emit-schedule faults.tsv]   write the schedule used and exit
//       [--obs metrics.json] [--trace decisions.tsv]
//   e.g. ./build/examples/chaos_campaign 1009 300
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "experiment/campaign.hpp"
#include "experiment/testbed.hpp"
#include "fault/chaos.hpp"
#include "obs/decision_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

TestbedConfig base_config(std::size_t probes) {
  TestbedConfig cfg;
  cfg.seed = 77;
  cfg.population.probes = probes;
  cfg.test_sites = {"DUB", "FRA", "GRU"};
  cfg.trace_decisions = true;
  return cfg;
}

/// Harvests fault targets (server identities, node names, service
/// addresses) from a throwaway build of the world.
fault::ChaosSpace world_space(std::size_t probes) {
  Testbed scout{base_config(probes)};
  fault::ChaosSpace space;
  space.horizon = net::Duration::minutes(20);
  space.events = 6;
  for (auto& svc : scout.test_services()) {
    for (auto& site : svc.sites()) {
      space.server_targets.push_back(site.server->identity());
      space.node_targets.push_back(scout.network().node(site.node).name);
    }
    space.address_targets.push_back(svc.address().to_string());
  }
  return space;
}

struct RunOutput {
  std::string metrics_json;
  std::string trace_tsv;
};

RunOutput run_once(const fault::FaultSchedule& schedule, std::size_t probes,
                   std::size_t shards) {
  auto cfg = base_config(probes);
  cfg.faults = schedule;
  Testbed testbed{cfg};
  CampaignConfig cc;
  cc.interval = net::Duration::minutes(2);
  cc.queries_per_vp = 8;
  cc.shards = shards;
  const auto result = run_campaign(testbed, cc);

  RunOutput out;
  out.metrics_json = result.metrics.to_json(obs::SnapshotStyle::MergeSafe);
  std::ostringstream trace_out;
  obs::write_trace(trace_out, testbed.trace().canonical());
  out.trace_tsv = trace_out.str();

  const auto snap = result.metrics;
  std::printf(
      "  shards=%zu: %llu sent, %llu answered, %llu unanswered; "
      "%llu pkts dropped, %llu delayed by faults\n",
      shards,
      static_cast<unsigned long long>(
          snap.counter_value(obs::names::kCampaignQueriesSent)),
      static_cast<unsigned long long>(
          snap.counter_value(obs::names::kCampaignQueriesAnswered)),
      static_cast<unsigned long long>(
          snap.counter_value(obs::names::kCampaignQueriesUnanswered)),
      static_cast<unsigned long long>(
          snap.counter_value(obs::names::kFaultPacketsDropped)),
      static_cast<unsigned long long>(
          snap.counter_value(obs::names::kFaultPacketsDelayed)));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* positional[2] = {nullptr, nullptr};
  std::size_t n_positional = 0;
  std::string schedule_path;
  std::string emit_path;
  std::string obs_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--schedule") == 0 && i + 1 < argc) {
      schedule_path = argv[++i];
    } else if (std::strcmp(argv[i], "--emit-schedule") == 0 && i + 1 < argc) {
      emit_path = argv[++i];
    } else if (std::strcmp(argv[i], "--obs") == 0 && i + 1 < argc) {
      obs_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (n_positional < 2) {
      positional[n_positional++] = argv[i];
    }
  }
  const std::uint64_t seed =
      positional[0] != nullptr ? std::strtoull(positional[0], nullptr, 10)
                               : 1009;
  const std::size_t probes =
      positional[1] != nullptr ? std::strtoull(positional[1], nullptr, 10)
                               : 120;

  fault::FaultSchedule schedule;
  if (!schedule_path.empty()) {
    std::ifstream in{schedule_path};
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", schedule_path.c_str());
      return 1;
    }
    schedule = fault::read_schedule(in);
    std::printf("loaded %zu fault events from %s\n", schedule.size(),
                schedule_path.c_str());
  } else {
    schedule = fault::random_schedule(world_space(probes), stats::Rng{seed});
    std::printf("seed %llu -> %zu fault events\n",
                static_cast<unsigned long long>(seed), schedule.size());
  }
  for (const auto& e : schedule.events()) {
    std::printf("  %-13s %6.1f..%6.1f min  %s%s%s  magnitude %.3g%s\n",
                std::string{to_string(e.kind)}.c_str(), e.start.minutes(),
                e.end.minutes(), e.target_a.c_str(),
                e.target_b.empty() ? "" : " <-> ", e.target_b.c_str(),
                e.magnitude,
                e.magnitude_end < 0 ? "" : " (ramped)");
  }
  if (!emit_path.empty()) {
    std::ofstream out{emit_path};
    fault::write_schedule(out, schedule);
    std::printf("schedule -> %s\n", emit_path.c_str());
    return 0;
  }

  std::printf("\ncampaign under faults (%zu probes):\n", probes);
  const RunOutput serial = run_once(schedule, probes, 1);
  const RunOutput two = run_once(schedule, probes, 2);
  const RunOutput four = run_once(schedule, probes, 4);

  const bool metrics_ok = serial.metrics_json == two.metrics_json &&
                          serial.metrics_json == four.metrics_json;
  const bool trace_ok = serial.trace_tsv == two.trace_tsv &&
                        serial.trace_tsv == four.trace_tsv;
  std::printf("\nmetrics byte-identical across shards 1/2/4: %s\n",
              metrics_ok ? "yes" : "NO");
  std::printf("trace   byte-identical across shards 1/2/4: %s\n",
              trace_ok ? "yes" : "NO");

  if (!obs_path.empty()) {
    std::ofstream out{obs_path};
    out << serial.metrics_json << "\n";
    std::printf("metrics -> %s\n", obs_path.c_str());
  }
  if (!trace_path.empty()) {
    std::ofstream out{trace_path};
    out << serial.trace_tsv;
    std::printf("trace -> %s\n", trace_path.c_str());
  }
  return metrics_ok && trace_ok ? 0 : 1;
}
