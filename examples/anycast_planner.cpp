// Anycast planner: the paper's §7 engineering question as a tool.
//
// Given a TLD-style deployment (a list of services, each unicast or
// anycast), simulate a worldwide production hour and report the latency
// clients on each continent actually experience — then compare candidate
// deployments. Demonstrates the primary recommendation: worst-case latency
// is limited by the least-anycast authoritative.
//
//   ./build/examples/anycast_planner [recursives]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "experiment/production.hpp"
#include "experiment/report.hpp"
#include "experiment/testbed.hpp"
#include "fault/schedule.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

DeploymentLatency evaluate(const char* title, bool all_anycast,
                           std::size_t recursives) {
  TestbedConfig cfg;
  cfg.seed = 9;
  cfg.build_population = false;
  cfg.all_anycast_nl = all_anycast;
  Testbed tb{cfg};

  std::printf("\n== %s ==\n", title);
  for (const auto& svc : tb.nl_services()) {
    std::printf("  %-14s %zu site(s)%s\n", svc.name().c_str(),
                svc.site_count(), svc.is_anycast() ? " [anycast]" : "");
  }

  ProductionConfig pc;
  pc.target = ProductionTarget::Nl;
  pc.recursives = recursives;
  const auto result = run_production(tb, pc);
  const auto latency = analyze_nl_latency(tb, result);

  std::printf("  %-4s %10s %10s %10s\n", "cont", "median", "p90", "worst");
  for (const auto& row : latency.continents) {
    std::printf("  %-4s %10s %10s %10s\n",
                std::string{net::continent_code(row.continent)}.c_str(),
                report::ms(row.median_ms, 0).c_str(),
                report::ms(row.p90_ms, 0).c_str(),
                report::ms(row.worst_ms, 0).c_str());
  }
  std::printf("  ALL  %10s %10s %10s\n",
              report::ms(latency.overall_median_ms, 0).c_str(),
              report::ms(latency.overall_p90_ms, 0).c_str(),
              report::ms(latency.overall_worst_ms, 0).c_str());
  return latency;
}

/// p-th percentile out of a snapshot histogram (bin upper edges).
double hist_percentile(const obs::MetricsSnapshot::HistogramValue& h,
                       double p) {
  if (h.total == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(p * double(h.total - 1));
  std::uint64_t seen = 0;
  const double width = (h.hi - h.lo) / double(h.counts.size());
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    seen += h.counts[i];
    if (seen > rank) return h.lo + width * double(i + 1);
  }
  return h.hi;
}

/// The dynamic-catchment drill (docs/ANYCAST.md): replay candidate B's
/// production hour, but withdraw one site of the widest anycast service
/// for the middle twenty minutes — a BGP withdrawal with an 800 ms
/// convergence window. Dynamic catchments absorb it: clients shift to the
/// next-best site and the deployment-wide percentiles barely move.
void failover_drill(std::size_t recursives,
                    const DeploymentLatency& clean) {
  TestbedConfig cfg;
  cfg.seed = 9;
  cfg.build_population = false;
  cfg.all_anycast_nl = true;

  std::string service;
  std::string site;
  std::size_t site_count = 0;
  {
    Testbed scout{cfg};
    for (const auto& svc : scout.nl_services()) {
      if (svc.site_count() > site_count) {
        site_count = svc.site_count();
        service = svc.name();
        site = svc.sites().front().code;
      }
    }
  }
  fault::FaultSchedule faults;
  faults.add({fault::FaultKind::SiteWithdraw,
              net::SimTime::origin() + net::Duration::minutes(20),
              net::SimTime::origin() + net::Duration::minutes(40),
              service, site, 800.0, -1.0});
  faults.validate();
  cfg.faults = faults;

  std::printf("\n== failover drill: candidate B, %s loses %s "
              "(minutes 20..40, 800 ms convergence) ==\n",
              service.c_str(), site.c_str());
  Testbed tb{cfg};
  ProductionConfig pc;
  pc.target = ProductionTarget::Nl;
  pc.recursives = recursives;
  const auto result = run_production(tb, pc);
  const auto latency = analyze_nl_latency(tb, result);

  const auto snap = tb.sim().metrics().snapshot();
  double failover_p50 = 0.0;
  double failover_p99 = 0.0;
  double failover_hi = 0.0;
  std::uint64_t failover_n = 0;
  for (const auto& h : snap.histograms) {
    if (h.name == obs::names::kAnycastFailoverLatencyMs) {
      failover_p50 = hist_percentile(h, 0.50);
      failover_p99 = hist_percentile(h, 0.99);
      failover_hi = h.hi;
      failover_n = h.total;
    }
  }
  std::printf("  catchment shifts: %llu, lost in convergence: %llu\n",
              static_cast<unsigned long long>(snap.counter_value(
                  obs::names::kAnycastCatchmentShift)),
              static_cast<unsigned long long>(snap.counter_value(
                  obs::names::kAnycastLostInConvergence)));
  if (failover_n > 0) {
    // Production flows are sparse (heavy-tailed rates), so "withdrawal ->
    // first packet on the next-best site" is dominated by each flow's own
    // revisit gap and clips at the histogram ceiling; bench_anycast
    // measures the dense-traffic failover latency proper.
    std::printf("  failover (withdrawal -> first packet on next-best "
                "site): p50 %s%.0f ms, p99 %s%.0f ms over %llu flow(s)\n",
                failover_p50 >= failover_hi ? ">= " : "", failover_p50,
                failover_p99 >= failover_hi ? ">= " : "", failover_p99,
                static_cast<unsigned long long>(failover_n));
  }
  std::printf("  global latency with the site down: p90 %.0f ms "
              "(clean %.0f), worst %.0f ms (clean %.0f)\n",
              latency.overall_p90_ms, clean.overall_p90_ms,
              latency.overall_worst_ms, clean.overall_worst_ms);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t recursives =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 250;
  report::header("Anycast deployment planning for a .nl-like TLD");

  const auto mixed =
      evaluate("candidate A: 5x unicast (AMS) + 3x anycast", false,
               recursives);
  const auto anycast =
      evaluate("candidate B: all 8 services anycast", true, recursives);

  std::printf("\nverdict: all-anycast cuts global p90 latency %.0f -> %.0f "
              "ms and worst-case %.0f -> %.0f ms.\n",
              mixed.overall_p90_ms, anycast.overall_p90_ms,
              mixed.overall_worst_ms, anycast.overall_worst_ms);
  std::printf("Recursives keep sending queries to EVERY authoritative, so "
              "a single unicast NS puts its round-trip into every "
              "client's tail (paper §7).\n");

  failover_drill(recursives, anycast);
  return 0;
}
