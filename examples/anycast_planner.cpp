// Anycast planner: the paper's §7 engineering question as a tool.
//
// Given a TLD-style deployment (a list of services, each unicast or
// anycast), simulate a worldwide production hour and report the latency
// clients on each continent actually experience — then compare candidate
// deployments. Demonstrates the primary recommendation: worst-case latency
// is limited by the least-anycast authoritative.
//
//   ./build/examples/anycast_planner [recursives]
#include <cstdio>
#include <cstdlib>

#include "experiment/production.hpp"
#include "experiment/report.hpp"
#include "experiment/testbed.hpp"

using namespace recwild;
using namespace recwild::experiment;

namespace {

DeploymentLatency evaluate(const char* title, bool all_anycast,
                           std::size_t recursives) {
  TestbedConfig cfg;
  cfg.seed = 9;
  cfg.build_population = false;
  cfg.all_anycast_nl = all_anycast;
  Testbed tb{cfg};

  std::printf("\n== %s ==\n", title);
  for (const auto& svc : tb.nl_services()) {
    std::printf("  %-14s %zu site(s)%s\n", svc.name().c_str(),
                svc.site_count(), svc.is_anycast() ? " [anycast]" : "");
  }

  ProductionConfig pc;
  pc.target = ProductionTarget::Nl;
  pc.recursives = recursives;
  const auto result = run_production(tb, pc);
  const auto latency = analyze_nl_latency(tb, result);

  std::printf("  %-4s %10s %10s %10s\n", "cont", "median", "p90", "worst");
  for (const auto& row : latency.continents) {
    std::printf("  %-4s %10s %10s %10s\n",
                std::string{net::continent_code(row.continent)}.c_str(),
                report::ms(row.median_ms, 0).c_str(),
                report::ms(row.p90_ms, 0).c_str(),
                report::ms(row.worst_ms, 0).c_str());
  }
  std::printf("  ALL  %10s %10s %10s\n",
              report::ms(latency.overall_median_ms, 0).c_str(),
              report::ms(latency.overall_p90_ms, 0).c_str(),
              report::ms(latency.overall_worst_ms, 0).c_str());
  return latency;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t recursives =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 250;
  report::header("Anycast deployment planning for a .nl-like TLD");

  const auto mixed =
      evaluate("candidate A: 5x unicast (AMS) + 3x anycast", false,
               recursives);
  const auto anycast =
      evaluate("candidate B: all 8 services anycast", true, recursives);

  std::printf("\nverdict: all-anycast cuts global p90 latency %.0f -> %.0f "
              "ms and worst-case %.0f -> %.0f ms.\n",
              mixed.overall_p90_ms, anycast.overall_p90_ms,
              mixed.overall_worst_ms, anycast.overall_worst_ms);
  std::printf("Recursives keep sending queries to EVERY authoritative, so "
              "a single unicast NS puts its round-trip into every "
              "client's tail (paper §7).\n");
  return 0;
}
