file(REMOVE_RECURSE
  "CMakeFiles/resolver_tests.dir/resolver/infra_cache_test.cpp.o"
  "CMakeFiles/resolver_tests.dir/resolver/infra_cache_test.cpp.o.d"
  "CMakeFiles/resolver_tests.dir/resolver/qname_minimization_test.cpp.o"
  "CMakeFiles/resolver_tests.dir/resolver/qname_minimization_test.cpp.o.d"
  "CMakeFiles/resolver_tests.dir/resolver/record_cache_test.cpp.o"
  "CMakeFiles/resolver_tests.dir/resolver/record_cache_test.cpp.o.d"
  "CMakeFiles/resolver_tests.dir/resolver/resolver_property_test.cpp.o"
  "CMakeFiles/resolver_tests.dir/resolver/resolver_property_test.cpp.o.d"
  "CMakeFiles/resolver_tests.dir/resolver/resolver_test.cpp.o"
  "CMakeFiles/resolver_tests.dir/resolver/resolver_test.cpp.o.d"
  "CMakeFiles/resolver_tests.dir/resolver/security_test.cpp.o"
  "CMakeFiles/resolver_tests.dir/resolver/security_test.cpp.o.d"
  "CMakeFiles/resolver_tests.dir/resolver/selection_test.cpp.o"
  "CMakeFiles/resolver_tests.dir/resolver/selection_test.cpp.o.d"
  "CMakeFiles/resolver_tests.dir/resolver/tcp_fallback_test.cpp.o"
  "CMakeFiles/resolver_tests.dir/resolver/tcp_fallback_test.cpp.o.d"
  "resolver_tests"
  "resolver_tests.pdb"
  "resolver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
