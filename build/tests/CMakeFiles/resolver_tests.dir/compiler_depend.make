# Empty compiler generated dependencies file for resolver_tests.
# This may be replaced when dependencies are built.
