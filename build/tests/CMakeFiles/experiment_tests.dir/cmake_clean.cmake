file(REMOVE_RECURSE
  "CMakeFiles/experiment_tests.dir/experiment/analysis_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/analysis_test.cpp.o.d"
  "CMakeFiles/experiment_tests.dir/experiment/campaign_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/campaign_test.cpp.o.d"
  "CMakeFiles/experiment_tests.dir/experiment/combo_sweep_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/combo_sweep_test.cpp.o.d"
  "CMakeFiles/experiment_tests.dir/experiment/deployments_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/deployments_test.cpp.o.d"
  "CMakeFiles/experiment_tests.dir/experiment/export_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/export_test.cpp.o.d"
  "CMakeFiles/experiment_tests.dir/experiment/failure_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/failure_test.cpp.o.d"
  "CMakeFiles/experiment_tests.dir/experiment/ipv6_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/ipv6_test.cpp.o.d"
  "CMakeFiles/experiment_tests.dir/experiment/loss_campaign_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/loss_campaign_test.cpp.o.d"
  "CMakeFiles/experiment_tests.dir/experiment/production_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/production_test.cpp.o.d"
  "CMakeFiles/experiment_tests.dir/experiment/testbed_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/testbed_test.cpp.o.d"
  "CMakeFiles/experiment_tests.dir/experiment/zones_test.cpp.o"
  "CMakeFiles/experiment_tests.dir/experiment/zones_test.cpp.o.d"
  "experiment_tests"
  "experiment_tests.pdb"
  "experiment_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/experiment_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
