# Empty compiler generated dependencies file for anycast_tests.
# This may be replaced when dependencies are built.
