file(REMOVE_RECURSE
  "CMakeFiles/anycast_tests.dir/anycast/service_test.cpp.o"
  "CMakeFiles/anycast_tests.dir/anycast/service_test.cpp.o.d"
  "anycast_tests"
  "anycast_tests.pdb"
  "anycast_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
