# Empty dependencies file for authns_tests.
# This may be replaced when dependencies are built.
