file(REMOVE_RECURSE
  "CMakeFiles/authns_tests.dir/authns/query_engine_test.cpp.o"
  "CMakeFiles/authns_tests.dir/authns/query_engine_test.cpp.o.d"
  "CMakeFiles/authns_tests.dir/authns/secondary_test.cpp.o"
  "CMakeFiles/authns_tests.dir/authns/secondary_test.cpp.o.d"
  "CMakeFiles/authns_tests.dir/authns/server_test.cpp.o"
  "CMakeFiles/authns_tests.dir/authns/server_test.cpp.o.d"
  "CMakeFiles/authns_tests.dir/authns/trace_test.cpp.o"
  "CMakeFiles/authns_tests.dir/authns/trace_test.cpp.o.d"
  "CMakeFiles/authns_tests.dir/authns/zone_property_test.cpp.o"
  "CMakeFiles/authns_tests.dir/authns/zone_property_test.cpp.o.d"
  "CMakeFiles/authns_tests.dir/authns/zone_test.cpp.o"
  "CMakeFiles/authns_tests.dir/authns/zone_test.cpp.o.d"
  "authns_tests"
  "authns_tests.pdb"
  "authns_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authns_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
