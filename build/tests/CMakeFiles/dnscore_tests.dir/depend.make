# Empty dependencies file for dnscore_tests.
# This may be replaced when dependencies are built.
