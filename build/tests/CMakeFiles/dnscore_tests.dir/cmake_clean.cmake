file(REMOVE_RECURSE
  "CMakeFiles/dnscore_tests.dir/dnscore/codec_test.cpp.o"
  "CMakeFiles/dnscore_tests.dir/dnscore/codec_test.cpp.o.d"
  "CMakeFiles/dnscore_tests.dir/dnscore/name_test.cpp.o"
  "CMakeFiles/dnscore_tests.dir/dnscore/name_test.cpp.o.d"
  "CMakeFiles/dnscore_tests.dir/dnscore/rdata_test.cpp.o"
  "CMakeFiles/dnscore_tests.dir/dnscore/rdata_test.cpp.o.d"
  "CMakeFiles/dnscore_tests.dir/dnscore/record_test.cpp.o"
  "CMakeFiles/dnscore_tests.dir/dnscore/record_test.cpp.o.d"
  "CMakeFiles/dnscore_tests.dir/dnscore/types_test.cpp.o"
  "CMakeFiles/dnscore_tests.dir/dnscore/types_test.cpp.o.d"
  "CMakeFiles/dnscore_tests.dir/dnscore/wire_test.cpp.o"
  "CMakeFiles/dnscore_tests.dir/dnscore/wire_test.cpp.o.d"
  "CMakeFiles/dnscore_tests.dir/dnscore/zonefile_test.cpp.o"
  "CMakeFiles/dnscore_tests.dir/dnscore/zonefile_test.cpp.o.d"
  "dnscore_tests"
  "dnscore_tests.pdb"
  "dnscore_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnscore_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
