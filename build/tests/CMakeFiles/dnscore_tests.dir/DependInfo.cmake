
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dnscore/codec_test.cpp" "tests/CMakeFiles/dnscore_tests.dir/dnscore/codec_test.cpp.o" "gcc" "tests/CMakeFiles/dnscore_tests.dir/dnscore/codec_test.cpp.o.d"
  "/root/repo/tests/dnscore/name_test.cpp" "tests/CMakeFiles/dnscore_tests.dir/dnscore/name_test.cpp.o" "gcc" "tests/CMakeFiles/dnscore_tests.dir/dnscore/name_test.cpp.o.d"
  "/root/repo/tests/dnscore/rdata_test.cpp" "tests/CMakeFiles/dnscore_tests.dir/dnscore/rdata_test.cpp.o" "gcc" "tests/CMakeFiles/dnscore_tests.dir/dnscore/rdata_test.cpp.o.d"
  "/root/repo/tests/dnscore/record_test.cpp" "tests/CMakeFiles/dnscore_tests.dir/dnscore/record_test.cpp.o" "gcc" "tests/CMakeFiles/dnscore_tests.dir/dnscore/record_test.cpp.o.d"
  "/root/repo/tests/dnscore/types_test.cpp" "tests/CMakeFiles/dnscore_tests.dir/dnscore/types_test.cpp.o" "gcc" "tests/CMakeFiles/dnscore_tests.dir/dnscore/types_test.cpp.o.d"
  "/root/repo/tests/dnscore/wire_test.cpp" "tests/CMakeFiles/dnscore_tests.dir/dnscore/wire_test.cpp.o" "gcc" "tests/CMakeFiles/dnscore_tests.dir/dnscore/wire_test.cpp.o.d"
  "/root/repo/tests/dnscore/zonefile_test.cpp" "tests/CMakeFiles/dnscore_tests.dir/dnscore/zonefile_test.cpp.o" "gcc" "tests/CMakeFiles/dnscore_tests.dir/dnscore/zonefile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/recwild_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/anycast/CMakeFiles/recwild_anycast.dir/DependInfo.cmake"
  "/root/repo/build/src/authns/CMakeFiles/recwild_authns.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/recwild_client.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/recwild_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/dnscore/CMakeFiles/recwild_dnscore.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/recwild_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/recwild_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
