# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stats_tests[1]_include.cmake")
include("/root/repo/build/tests/net_tests[1]_include.cmake")
include("/root/repo/build/tests/dnscore_tests[1]_include.cmake")
include("/root/repo/build/tests/authns_tests[1]_include.cmake")
include("/root/repo/build/tests/resolver_tests[1]_include.cmake")
include("/root/repo/build/tests/client_tests[1]_include.cmake")
include("/root/repo/build/tests/anycast_tests[1]_include.cmake")
include("/root/repo/build/tests/experiment_tests[1]_include.cmake")
