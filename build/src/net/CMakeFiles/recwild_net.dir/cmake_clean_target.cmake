file(REMOVE_RECURSE
  "librecwild_net.a"
)
