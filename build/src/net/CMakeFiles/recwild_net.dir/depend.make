# Empty dependencies file for recwild_net.
# This may be replaced when dependencies are built.
