file(REMOVE_RECURSE
  "CMakeFiles/recwild_net.dir/address.cpp.o"
  "CMakeFiles/recwild_net.dir/address.cpp.o.d"
  "CMakeFiles/recwild_net.dir/event_queue.cpp.o"
  "CMakeFiles/recwild_net.dir/event_queue.cpp.o.d"
  "CMakeFiles/recwild_net.dir/geo.cpp.o"
  "CMakeFiles/recwild_net.dir/geo.cpp.o.d"
  "CMakeFiles/recwild_net.dir/latency.cpp.o"
  "CMakeFiles/recwild_net.dir/latency.cpp.o.d"
  "CMakeFiles/recwild_net.dir/network.cpp.o"
  "CMakeFiles/recwild_net.dir/network.cpp.o.d"
  "CMakeFiles/recwild_net.dir/simulation.cpp.o"
  "CMakeFiles/recwild_net.dir/simulation.cpp.o.d"
  "librecwild_net.a"
  "librecwild_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recwild_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
