file(REMOVE_RECURSE
  "librecwild_resolver.a"
)
