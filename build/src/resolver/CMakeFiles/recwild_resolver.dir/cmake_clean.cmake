file(REMOVE_RECURSE
  "CMakeFiles/recwild_resolver.dir/infra_cache.cpp.o"
  "CMakeFiles/recwild_resolver.dir/infra_cache.cpp.o.d"
  "CMakeFiles/recwild_resolver.dir/record_cache.cpp.o"
  "CMakeFiles/recwild_resolver.dir/record_cache.cpp.o.d"
  "CMakeFiles/recwild_resolver.dir/resolver.cpp.o"
  "CMakeFiles/recwild_resolver.dir/resolver.cpp.o.d"
  "CMakeFiles/recwild_resolver.dir/selection.cpp.o"
  "CMakeFiles/recwild_resolver.dir/selection.cpp.o.d"
  "librecwild_resolver.a"
  "librecwild_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recwild_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
