# Empty compiler generated dependencies file for recwild_resolver.
# This may be replaced when dependencies are built.
