
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/infra_cache.cpp" "src/resolver/CMakeFiles/recwild_resolver.dir/infra_cache.cpp.o" "gcc" "src/resolver/CMakeFiles/recwild_resolver.dir/infra_cache.cpp.o.d"
  "/root/repo/src/resolver/record_cache.cpp" "src/resolver/CMakeFiles/recwild_resolver.dir/record_cache.cpp.o" "gcc" "src/resolver/CMakeFiles/recwild_resolver.dir/record_cache.cpp.o.d"
  "/root/repo/src/resolver/resolver.cpp" "src/resolver/CMakeFiles/recwild_resolver.dir/resolver.cpp.o" "gcc" "src/resolver/CMakeFiles/recwild_resolver.dir/resolver.cpp.o.d"
  "/root/repo/src/resolver/selection.cpp" "src/resolver/CMakeFiles/recwild_resolver.dir/selection.cpp.o" "gcc" "src/resolver/CMakeFiles/recwild_resolver.dir/selection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnscore/CMakeFiles/recwild_dnscore.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/recwild_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/recwild_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
