file(REMOVE_RECURSE
  "CMakeFiles/recwild_experiment.dir/analysis.cpp.o"
  "CMakeFiles/recwild_experiment.dir/analysis.cpp.o.d"
  "CMakeFiles/recwild_experiment.dir/campaign.cpp.o"
  "CMakeFiles/recwild_experiment.dir/campaign.cpp.o.d"
  "CMakeFiles/recwild_experiment.dir/deployments.cpp.o"
  "CMakeFiles/recwild_experiment.dir/deployments.cpp.o.d"
  "CMakeFiles/recwild_experiment.dir/export.cpp.o"
  "CMakeFiles/recwild_experiment.dir/export.cpp.o.d"
  "CMakeFiles/recwild_experiment.dir/failure.cpp.o"
  "CMakeFiles/recwild_experiment.dir/failure.cpp.o.d"
  "CMakeFiles/recwild_experiment.dir/production.cpp.o"
  "CMakeFiles/recwild_experiment.dir/production.cpp.o.d"
  "CMakeFiles/recwild_experiment.dir/report.cpp.o"
  "CMakeFiles/recwild_experiment.dir/report.cpp.o.d"
  "CMakeFiles/recwild_experiment.dir/testbed.cpp.o"
  "CMakeFiles/recwild_experiment.dir/testbed.cpp.o.d"
  "CMakeFiles/recwild_experiment.dir/zones.cpp.o"
  "CMakeFiles/recwild_experiment.dir/zones.cpp.o.d"
  "librecwild_experiment.a"
  "librecwild_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recwild_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
