file(REMOVE_RECURSE
  "librecwild_experiment.a"
)
