
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/experiment/analysis.cpp" "src/experiment/CMakeFiles/recwild_experiment.dir/analysis.cpp.o" "gcc" "src/experiment/CMakeFiles/recwild_experiment.dir/analysis.cpp.o.d"
  "/root/repo/src/experiment/campaign.cpp" "src/experiment/CMakeFiles/recwild_experiment.dir/campaign.cpp.o" "gcc" "src/experiment/CMakeFiles/recwild_experiment.dir/campaign.cpp.o.d"
  "/root/repo/src/experiment/deployments.cpp" "src/experiment/CMakeFiles/recwild_experiment.dir/deployments.cpp.o" "gcc" "src/experiment/CMakeFiles/recwild_experiment.dir/deployments.cpp.o.d"
  "/root/repo/src/experiment/export.cpp" "src/experiment/CMakeFiles/recwild_experiment.dir/export.cpp.o" "gcc" "src/experiment/CMakeFiles/recwild_experiment.dir/export.cpp.o.d"
  "/root/repo/src/experiment/failure.cpp" "src/experiment/CMakeFiles/recwild_experiment.dir/failure.cpp.o" "gcc" "src/experiment/CMakeFiles/recwild_experiment.dir/failure.cpp.o.d"
  "/root/repo/src/experiment/production.cpp" "src/experiment/CMakeFiles/recwild_experiment.dir/production.cpp.o" "gcc" "src/experiment/CMakeFiles/recwild_experiment.dir/production.cpp.o.d"
  "/root/repo/src/experiment/report.cpp" "src/experiment/CMakeFiles/recwild_experiment.dir/report.cpp.o" "gcc" "src/experiment/CMakeFiles/recwild_experiment.dir/report.cpp.o.d"
  "/root/repo/src/experiment/testbed.cpp" "src/experiment/CMakeFiles/recwild_experiment.dir/testbed.cpp.o" "gcc" "src/experiment/CMakeFiles/recwild_experiment.dir/testbed.cpp.o.d"
  "/root/repo/src/experiment/zones.cpp" "src/experiment/CMakeFiles/recwild_experiment.dir/zones.cpp.o" "gcc" "src/experiment/CMakeFiles/recwild_experiment.dir/zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/anycast/CMakeFiles/recwild_anycast.dir/DependInfo.cmake"
  "/root/repo/build/src/authns/CMakeFiles/recwild_authns.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/recwild_client.dir/DependInfo.cmake"
  "/root/repo/build/src/dnscore/CMakeFiles/recwild_dnscore.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/recwild_net.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/recwild_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/recwild_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
