# Empty compiler generated dependencies file for recwild_experiment.
# This may be replaced when dependencies are built.
