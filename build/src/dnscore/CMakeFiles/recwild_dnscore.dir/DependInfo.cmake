
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnscore/codec.cpp" "src/dnscore/CMakeFiles/recwild_dnscore.dir/codec.cpp.o" "gcc" "src/dnscore/CMakeFiles/recwild_dnscore.dir/codec.cpp.o.d"
  "/root/repo/src/dnscore/message.cpp" "src/dnscore/CMakeFiles/recwild_dnscore.dir/message.cpp.o" "gcc" "src/dnscore/CMakeFiles/recwild_dnscore.dir/message.cpp.o.d"
  "/root/repo/src/dnscore/name.cpp" "src/dnscore/CMakeFiles/recwild_dnscore.dir/name.cpp.o" "gcc" "src/dnscore/CMakeFiles/recwild_dnscore.dir/name.cpp.o.d"
  "/root/repo/src/dnscore/rdata.cpp" "src/dnscore/CMakeFiles/recwild_dnscore.dir/rdata.cpp.o" "gcc" "src/dnscore/CMakeFiles/recwild_dnscore.dir/rdata.cpp.o.d"
  "/root/repo/src/dnscore/record.cpp" "src/dnscore/CMakeFiles/recwild_dnscore.dir/record.cpp.o" "gcc" "src/dnscore/CMakeFiles/recwild_dnscore.dir/record.cpp.o.d"
  "/root/repo/src/dnscore/types.cpp" "src/dnscore/CMakeFiles/recwild_dnscore.dir/types.cpp.o" "gcc" "src/dnscore/CMakeFiles/recwild_dnscore.dir/types.cpp.o.d"
  "/root/repo/src/dnscore/wire.cpp" "src/dnscore/CMakeFiles/recwild_dnscore.dir/wire.cpp.o" "gcc" "src/dnscore/CMakeFiles/recwild_dnscore.dir/wire.cpp.o.d"
  "/root/repo/src/dnscore/zonefile.cpp" "src/dnscore/CMakeFiles/recwild_dnscore.dir/zonefile.cpp.o" "gcc" "src/dnscore/CMakeFiles/recwild_dnscore.dir/zonefile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/recwild_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/recwild_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
