file(REMOVE_RECURSE
  "CMakeFiles/recwild_dnscore.dir/codec.cpp.o"
  "CMakeFiles/recwild_dnscore.dir/codec.cpp.o.d"
  "CMakeFiles/recwild_dnscore.dir/message.cpp.o"
  "CMakeFiles/recwild_dnscore.dir/message.cpp.o.d"
  "CMakeFiles/recwild_dnscore.dir/name.cpp.o"
  "CMakeFiles/recwild_dnscore.dir/name.cpp.o.d"
  "CMakeFiles/recwild_dnscore.dir/rdata.cpp.o"
  "CMakeFiles/recwild_dnscore.dir/rdata.cpp.o.d"
  "CMakeFiles/recwild_dnscore.dir/record.cpp.o"
  "CMakeFiles/recwild_dnscore.dir/record.cpp.o.d"
  "CMakeFiles/recwild_dnscore.dir/types.cpp.o"
  "CMakeFiles/recwild_dnscore.dir/types.cpp.o.d"
  "CMakeFiles/recwild_dnscore.dir/wire.cpp.o"
  "CMakeFiles/recwild_dnscore.dir/wire.cpp.o.d"
  "CMakeFiles/recwild_dnscore.dir/zonefile.cpp.o"
  "CMakeFiles/recwild_dnscore.dir/zonefile.cpp.o.d"
  "librecwild_dnscore.a"
  "librecwild_dnscore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recwild_dnscore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
