file(REMOVE_RECURSE
  "librecwild_dnscore.a"
)
