# Empty dependencies file for recwild_dnscore.
# This may be replaced when dependencies are built.
