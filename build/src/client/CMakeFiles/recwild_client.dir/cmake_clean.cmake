file(REMOVE_RECURSE
  "CMakeFiles/recwild_client.dir/forwarder.cpp.o"
  "CMakeFiles/recwild_client.dir/forwarder.cpp.o.d"
  "CMakeFiles/recwild_client.dir/population.cpp.o"
  "CMakeFiles/recwild_client.dir/population.cpp.o.d"
  "CMakeFiles/recwild_client.dir/stub.cpp.o"
  "CMakeFiles/recwild_client.dir/stub.cpp.o.d"
  "librecwild_client.a"
  "librecwild_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recwild_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
