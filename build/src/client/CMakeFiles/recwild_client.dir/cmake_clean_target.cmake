file(REMOVE_RECURSE
  "librecwild_client.a"
)
