# Empty compiler generated dependencies file for recwild_client.
# This may be replaced when dependencies are built.
