file(REMOVE_RECURSE
  "librecwild_anycast.a"
)
