file(REMOVE_RECURSE
  "CMakeFiles/recwild_anycast.dir/service.cpp.o"
  "CMakeFiles/recwild_anycast.dir/service.cpp.o.d"
  "librecwild_anycast.a"
  "librecwild_anycast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recwild_anycast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
