# Empty compiler generated dependencies file for recwild_anycast.
# This may be replaced when dependencies are built.
