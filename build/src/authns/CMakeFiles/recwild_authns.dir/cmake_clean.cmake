file(REMOVE_RECURSE
  "CMakeFiles/recwild_authns.dir/query_engine.cpp.o"
  "CMakeFiles/recwild_authns.dir/query_engine.cpp.o.d"
  "CMakeFiles/recwild_authns.dir/query_log.cpp.o"
  "CMakeFiles/recwild_authns.dir/query_log.cpp.o.d"
  "CMakeFiles/recwild_authns.dir/secondary.cpp.o"
  "CMakeFiles/recwild_authns.dir/secondary.cpp.o.d"
  "CMakeFiles/recwild_authns.dir/server.cpp.o"
  "CMakeFiles/recwild_authns.dir/server.cpp.o.d"
  "CMakeFiles/recwild_authns.dir/trace.cpp.o"
  "CMakeFiles/recwild_authns.dir/trace.cpp.o.d"
  "CMakeFiles/recwild_authns.dir/zone.cpp.o"
  "CMakeFiles/recwild_authns.dir/zone.cpp.o.d"
  "librecwild_authns.a"
  "librecwild_authns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recwild_authns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
