file(REMOVE_RECURSE
  "librecwild_authns.a"
)
