
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/authns/query_engine.cpp" "src/authns/CMakeFiles/recwild_authns.dir/query_engine.cpp.o" "gcc" "src/authns/CMakeFiles/recwild_authns.dir/query_engine.cpp.o.d"
  "/root/repo/src/authns/query_log.cpp" "src/authns/CMakeFiles/recwild_authns.dir/query_log.cpp.o" "gcc" "src/authns/CMakeFiles/recwild_authns.dir/query_log.cpp.o.d"
  "/root/repo/src/authns/secondary.cpp" "src/authns/CMakeFiles/recwild_authns.dir/secondary.cpp.o" "gcc" "src/authns/CMakeFiles/recwild_authns.dir/secondary.cpp.o.d"
  "/root/repo/src/authns/server.cpp" "src/authns/CMakeFiles/recwild_authns.dir/server.cpp.o" "gcc" "src/authns/CMakeFiles/recwild_authns.dir/server.cpp.o.d"
  "/root/repo/src/authns/trace.cpp" "src/authns/CMakeFiles/recwild_authns.dir/trace.cpp.o" "gcc" "src/authns/CMakeFiles/recwild_authns.dir/trace.cpp.o.d"
  "/root/repo/src/authns/zone.cpp" "src/authns/CMakeFiles/recwild_authns.dir/zone.cpp.o" "gcc" "src/authns/CMakeFiles/recwild_authns.dir/zone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dnscore/CMakeFiles/recwild_dnscore.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/recwild_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/recwild_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
