# Empty compiler generated dependencies file for recwild_authns.
# This may be replaced when dependencies are built.
