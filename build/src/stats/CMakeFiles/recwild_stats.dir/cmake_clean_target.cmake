file(REMOVE_RECURSE
  "librecwild_stats.a"
)
