# Empty compiler generated dependencies file for recwild_stats.
# This may be replaced when dependencies are built.
