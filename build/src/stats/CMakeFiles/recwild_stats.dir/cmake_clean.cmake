file(REMOVE_RECURSE
  "CMakeFiles/recwild_stats.dir/distributions.cpp.o"
  "CMakeFiles/recwild_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/recwild_stats.dir/histogram.cpp.o"
  "CMakeFiles/recwild_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/recwild_stats.dir/rng.cpp.o"
  "CMakeFiles/recwild_stats.dir/rng.cpp.o.d"
  "CMakeFiles/recwild_stats.dir/summary.cpp.o"
  "CMakeFiles/recwild_stats.dir/summary.cpp.o.d"
  "librecwild_stats.a"
  "librecwild_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recwild_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
