file(REMOVE_RECURSE
  "CMakeFiles/bench_recommendation.dir/bench_recommendation.cpp.o"
  "CMakeFiles/bench_recommendation.dir/bench_recommendation.cpp.o.d"
  "bench_recommendation"
  "bench_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
