# Empty compiler generated dependencies file for bench_ipv6.
# This may be replaced when dependencies are built.
