file(REMOVE_RECURSE
  "CMakeFiles/bench_ipv6.dir/bench_ipv6.cpp.o"
  "CMakeFiles/bench_ipv6.dir/bench_ipv6.cpp.o.d"
  "bench_ipv6"
  "bench_ipv6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipv6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
