file(REMOVE_RECURSE
  "CMakeFiles/bench_ddos.dir/bench_ddos.cpp.o"
  "CMakeFiles/bench_ddos.dir/bench_ddos.cpp.o.d"
  "bench_ddos"
  "bench_ddos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ddos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
