# Empty dependencies file for bench_ddos.
# This may be replaced when dependencies are built.
