file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_root.dir/bench_fig7_root.cpp.o"
  "CMakeFiles/bench_fig7_root.dir/bench_fig7_root.cpp.o.d"
  "bench_fig7_root"
  "bench_fig7_root.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
