# Empty dependencies file for bench_fig7_root.
# This may be replaced when dependencies are built.
