# Empty compiler generated dependencies file for atlas_campaign.
# This may be replaced when dependencies are built.
