file(REMOVE_RECURSE
  "CMakeFiles/atlas_campaign.dir/atlas_campaign.cpp.o"
  "CMakeFiles/atlas_campaign.dir/atlas_campaign.cpp.o.d"
  "atlas_campaign"
  "atlas_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atlas_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
