# Empty compiler generated dependencies file for resolver_policies.
# This may be replaced when dependencies are built.
