file(REMOVE_RECURSE
  "CMakeFiles/resolver_policies.dir/resolver_policies.cpp.o"
  "CMakeFiles/resolver_policies.dir/resolver_policies.cpp.o.d"
  "resolver_policies"
  "resolver_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
