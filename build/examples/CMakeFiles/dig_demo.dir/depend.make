# Empty dependencies file for dig_demo.
# This may be replaced when dependencies are built.
