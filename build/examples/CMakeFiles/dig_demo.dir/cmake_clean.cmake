file(REMOVE_RECURSE
  "CMakeFiles/dig_demo.dir/dig_demo.cpp.o"
  "CMakeFiles/dig_demo.dir/dig_demo.cpp.o.d"
  "dig_demo"
  "dig_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dig_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
