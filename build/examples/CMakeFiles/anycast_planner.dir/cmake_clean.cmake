file(REMOVE_RECURSE
  "CMakeFiles/anycast_planner.dir/anycast_planner.cpp.o"
  "CMakeFiles/anycast_planner.dir/anycast_planner.cpp.o.d"
  "anycast_planner"
  "anycast_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
