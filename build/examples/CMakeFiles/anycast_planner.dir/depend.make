# Empty dependencies file for anycast_planner.
# This may be replaced when dependencies are built.
